"""Transformer workload models: exact operator graphs from hyperparameters.

Given a :class:`TransformerConfig`, the builders construct full dataflow
graphs for the three phases the paper benchmarks (Table II):

- **prefill** — first-token generation: processes the whole prompt and
  constructs the KV cache; compute-bound,
- **decode** — autoregressive generation with the KV cache: one token per
  step, memory-bound (reads all weights plus the KV cache per token),
- **train** — forward plus backward plus optimizer step.

Graphs are built at PyTorch-operator granularity (the granularity of the
paper's unfused baseline): ~20 operators per decoder layer, covering
norms, projections, RoPE, KV-cache update, attention score/softmax/value,
head-merge shuffles, gated MLPs, residuals, and tensor-parallel
all-reduces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.dataflow.graph import (
    AccessPattern,
    DataflowGraph,
    DType,
    TensorSpec,
)
from repro.dataflow.operators import (
    allreduce,
    elementwise,
    embedding,
    gemm,
    kv_append,
    linear,
    norm,
    reshape,
    rope,
    sample,
    softmax,
    tensor,
)


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyperparameters of one decoder-only language model."""

    name: str
    hidden: int
    layers: int
    heads: int
    kv_heads: int
    intermediate: int
    vocab: int
    max_seq: int = 4096
    #: Gated MLP (SiLU(gate) * up, three matrices) vs classic two-matrix FFN.
    gated_mlp: bool = True
    #: "rmsnorm" (4 FLOPs/elem) or "layernorm" (6 FLOPs/elem).
    norm_kind: str = "rmsnorm"
    #: "rope" adds rotary ops; "alibi" adds a bias elementwise on scores.
    positional: str = "rope"
    #: Sliding-window attention width (Mistral), or None for full causal.
    sliding_window: Optional[int] = None
    #: Structured weight sparsity fraction (sparseGPT: 0.875).
    sparsity: float = 0.0
    dtype: DType = DType.BF16

    def __post_init__(self) -> None:
        if self.hidden % self.heads != 0:
            raise ValueError(f"{self.name}: hidden not divisible by heads")
        if self.heads % self.kv_heads != 0:
            raise ValueError(f"{self.name}: heads not divisible by kv_heads")
        if self.norm_kind not in ("rmsnorm", "layernorm"):
            raise ValueError(f"{self.name}: unknown norm {self.norm_kind!r}")
        if self.positional not in ("rope", "alibi"):
            raise ValueError(f"{self.name}: unknown positional {self.positional!r}")

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads

    @property
    def kv_dim(self) -> int:
        return self.kv_heads * self.head_dim

    @property
    def mlp_matrices(self) -> int:
        return 3 if self.gated_mlp else 2

    @property
    def params_per_layer(self) -> int:
        attn = self.hidden * self.hidden * 2 + self.hidden * self.kv_dim * 2
        mlp = self.mlp_matrices * self.hidden * self.intermediate
        norms = 2 * self.hidden
        return attn + mlp + norms

    @property
    def param_count(self) -> int:
        """Total parameters (dense count; sparsity reduces storage only)."""
        embed = 2 * self.vocab * self.hidden  # input embedding + LM head
        return embed + self.layers * self.params_per_layer + self.hidden

    @property
    def weight_bytes(self) -> int:
        """Bytes to store the model, honouring weight sparsity."""
        dense = self.param_count
        embed = 2 * self.vocab * self.hidden
        layer_params = self.param_count - embed - self.hidden
        stored = embed + self.hidden + round(layer_params * (1.0 - self.sparsity))
        return stored * self.dtype.size_bytes

    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes appended per generated/processed token."""
        return 2 * self.layers * self.kv_dim * self.dtype.size_bytes

    @property
    def norm_flops_per_element(self) -> float:
        return 4.0 if self.norm_kind == "rmsnorm" else 6.0


# ----------------------------------------------------------------------
# Graph builders
# ----------------------------------------------------------------------


def _decoder_layer(
    g: DataflowGraph,
    cfg: TransformerConfig,
    layer: int,
    hidden_in: TensorSpec,
    batch: int,
    q_len: int,
    kv_len: int,
    tp: int,
    use_cache: bool,
) -> TensorSpec:
    """Append one decoder layer to ``g``; returns the layer output tensor.

    ``q_len`` is the number of query positions per sample (prompt length
    for prefill, 1 for decode); ``kv_len`` is the attended context length.
    """
    L = f"l{layer}"
    tokens = batch * q_len
    attended = min(kv_len, cfg.sliding_window) if cfg.sliding_window else kv_len

    normed = g.add(
        norm(f"{L}.norm1", hidden_in, f"{L}.norm1.w", f"{L}.norm1.out",
             flops_per_element=cfg.norm_flops_per_element)
    ).outputs[0]

    q = g.add(linear(f"{L}.q", normed, f"{L}.q.w", cfg.hidden, cfg.hidden,
                     tokens, cfg.sparsity, cfg.dtype)).outputs[0]
    k = g.add(linear(f"{L}.k", normed, f"{L}.k.w", cfg.hidden, cfg.kv_dim,
                     tokens, cfg.sparsity, cfg.dtype)).outputs[0]
    v = g.add(linear(f"{L}.v", normed, f"{L}.v.w", cfg.hidden, cfg.kv_dim,
                     tokens, cfg.sparsity, cfg.dtype)).outputs[0]

    if cfg.positional == "rope":
        q = g.add(rope(f"{L}.rope_q", q, f"{L}.rope_q.out")).outputs[0]
        k = g.add(rope(f"{L}.rope_k", k, f"{L}.rope_k.out")).outputs[0]

    cache_shape = (batch, cfg.kv_heads, kv_len, cfg.head_dim)
    g.add(kv_append(f"{L}.kcache_w", k, f"{L}.kcache", cache_shape))
    g.add(kv_append(f"{L}.vcache_w", v, f"{L}.vcache", cache_shape))

    if use_cache:
        # Decode: attention reads the cache built across prior steps. The
        # cache tensors are *external inputs* (big, non-weight) — exactly
        # the traffic that makes decode memory-bound.
        k_src = tensor(f"{L}.kcache_r", cache_shape, cfg.dtype)
        v_src = tensor(f"{L}.vcache_r", cache_shape, cfg.dtype)
    else:
        k_src, v_src = k, v

    bh = batch * cfg.heads
    scores = g.add(
        gemm(f"{L}.scores", q, k_src, f"{L}.scores.out",
             m=q_len, k=cfg.head_dim, n=attended, batch=bh, dtype=cfg.dtype,
             b_pattern=AccessPattern.TRANSPOSE)
    ).outputs[0]
    if cfg.positional == "alibi":
        scores = g.add(
            elementwise(f"{L}.alibi", [scores], f"{L}.alibi.out", 1.0)
        ).outputs[0]
    probs = g.add(softmax(f"{L}.softmax", scores, f"{L}.probs")).outputs[0]
    ctx = g.add(
        gemm(f"{L}.ctx", probs, v_src, f"{L}.ctx.out",
             m=q_len, k=attended, n=cfg.head_dim, batch=bh, dtype=cfg.dtype)
    ).outputs[0]
    merged = g.add(
        reshape(f"{L}.merge_heads", ctx, f"{L}.merged", (tokens, cfg.hidden))
    ).outputs[0]

    attn_out = g.add(linear(f"{L}.o", merged, f"{L}.o.w", cfg.hidden, cfg.hidden,
                            tokens, cfg.sparsity, cfg.dtype)).outputs[0]
    if tp > 1:
        attn_out = g.add(
            allreduce(f"{L}.ar_attn", attn_out, f"{L}.ar_attn.out", tp)
        ).outputs[0]
    resid1 = g.add(
        elementwise(f"{L}.resid1", [attn_out, hidden_in], f"{L}.resid1.out", 1.0)
    ).outputs[0]

    normed2 = g.add(
        norm(f"{L}.norm2", resid1, f"{L}.norm2.w", f"{L}.norm2.out",
             flops_per_element=cfg.norm_flops_per_element)
    ).outputs[0]
    if cfg.gated_mlp:
        gate = g.add(linear(f"{L}.gate", normed2, f"{L}.gate.w", cfg.hidden,
                            cfg.intermediate, tokens, cfg.sparsity, cfg.dtype)).outputs[0]
        up = g.add(linear(f"{L}.up", normed2, f"{L}.up.w", cfg.hidden,
                          cfg.intermediate, tokens, cfg.sparsity, cfg.dtype)).outputs[0]
        act = g.add(
            elementwise(f"{L}.silu", [gate], f"{L}.silu.out", 4.0)
        ).outputs[0]
        fused_mul = g.add(
            elementwise(f"{L}.gate_mul", [act, up], f"{L}.gate_mul.out", 1.0)
        ).outputs[0]
        mlp_in = fused_mul
    else:
        fc1 = g.add(linear(f"{L}.fc1", normed2, f"{L}.fc1.w", cfg.hidden,
                           cfg.intermediate, tokens, cfg.sparsity, cfg.dtype)).outputs[0]
        mlp_in = g.add(
            elementwise(f"{L}.gelu", [fc1], f"{L}.gelu.out", 8.0)
        ).outputs[0]
    down = g.add(linear(f"{L}.down", mlp_in, f"{L}.down.w", cfg.intermediate,
                        cfg.hidden, tokens, cfg.sparsity, cfg.dtype)).outputs[0]
    if tp > 1:
        down = g.add(
            allreduce(f"{L}.ar_mlp", down, f"{L}.ar_mlp.out", tp)
        ).outputs[0]
    out = g.add(
        elementwise(f"{L}.resid2", [down, resid1], f"{L}.resid2.out", 1.0)
    ).outputs[0]
    return out


def prefill_graph(
    cfg: TransformerConfig, batch: int = 1, seq: int = 2048, tp: int = 1
) -> DataflowGraph:
    """First-token generation over a ``seq``-token prompt."""
    _check_args(cfg, batch, seq, tp)
    g = DataflowGraph(f"{cfg.name}-prefill-b{batch}-s{seq}")
    ids = tensor("ids", (batch, seq), DType.INT32)
    hidden = g.add(
        embedding("embed", ids, "embed.table", cfg.vocab, cfg.hidden,
                  batch * seq, cfg.dtype)
    ).outputs[0]
    for layer in range(cfg.layers):
        hidden = _decoder_layer(
            g, cfg, layer, hidden, batch, q_len=seq, kv_len=seq, tp=tp,
            use_cache=False,
        )
    final = g.add(
        norm("final_norm", hidden, "final_norm.w", "final_norm.out",
             flops_per_element=cfg.norm_flops_per_element)
    ).outputs[0]
    logits = g.add(linear("lm_head", final, "lm_head.w", cfg.hidden,
                          cfg.vocab, batch, 0.0, cfg.dtype)).outputs[0]
    g.add(sample("sample", logits, "next_token"))
    return g


def decode_graph(
    cfg: TransformerConfig, batch: int = 1, context: int = 2048, tp: int = 1
) -> DataflowGraph:
    """One autoregressive decode step at ``context`` tokens of KV cache."""
    _check_args(cfg, batch, context, tp)
    g = DataflowGraph(f"{cfg.name}-decode-b{batch}-c{context}")
    ids = tensor("ids", (batch, 1), DType.INT32)
    hidden = g.add(
        embedding("embed", ids, "embed.table", cfg.vocab, cfg.hidden,
                  batch, cfg.dtype)
    ).outputs[0]
    for layer in range(cfg.layers):
        hidden = _decoder_layer(
            g, cfg, layer, hidden, batch, q_len=1, kv_len=context, tp=tp,
            use_cache=True,
        )
    final = g.add(
        norm("final_norm", hidden, "final_norm.w", "final_norm.out",
             flops_per_element=cfg.norm_flops_per_element)
    ).outputs[0]
    logits = g.add(linear("lm_head", final, "lm_head.w", cfg.hidden,
                          cfg.vocab, batch, 0.0, cfg.dtype)).outputs[0]
    g.add(sample("sample", logits, "next_token"))
    return g


def train_graph(
    cfg: TransformerConfig, batch: int = 1, seq: int = 2048, tp: int = 1
) -> DataflowGraph:
    """One training step: forward, backward (~2x forward), optimizer.

    The backward pass is modelled operator-by-operator: each forward GEMM
    contributes a data-gradient GEMM and a weight-gradient GEMM (same
    dims); each elementwise/norm/softmax contributes one gradient op of
    equal size. Optimizer update touches every parameter once.
    """
    fwd = prefill_graph(cfg, batch, seq, tp)
    g = DataflowGraph(f"{cfg.name}-train-b{batch}-s{seq}")
    for op in fwd.topological_order():
        if op.kind.value == "sample":
            continue  # training uses a loss, not sampling
        g.add(op)

    tokens = batch * seq
    loss_in = tensor("lm_head.out", (batch, cfg.vocab), cfg.dtype)
    grad = g.add(
        elementwise("loss_grad", [loss_in], "grad.logits", 2.0)
    ).outputs[0]

    # Backward over layers (coarse per-layer gradient ops with exact GEMM
    # dims; intermediate grads chain so fusion sees a connected region).
    for layer in reversed(range(cfg.layers)):
        L = f"l{layer}"
        for proj, fan_in, fan_out in _layer_projections(cfg):
            w = tensor(f"{L}.{proj}.w.g", (fan_in * fan_out,), cfg.dtype)
            dgrad = gemm(f"{L}.{proj}.dgrad", grad, w, f"{L}.{proj}.dgrad.out",
                         m=tokens, k=fan_out, n=fan_in,
                         sparsity=cfg.sparsity, dtype=cfg.dtype)
            g.add(dgrad)
            act = tensor(f"{L}.{proj}.act", (tokens, fan_in), cfg.dtype)
            g.add(gemm(f"{L}.{proj}.wgrad", dgrad.outputs[0], act,
                       f"{L}.{proj}.wgrad.out", m=fan_out, k=tokens, n=fan_in,
                       sparsity=cfg.sparsity, dtype=cfg.dtype,
                       a_pattern=AccessPattern.TRANSPOSE))
            grad = dgrad.outputs[0]
        grad = g.add(
            elementwise(f"{L}.bwd_ew", [grad], f"{L}.bwd_ew.out", 6.0)
        ).outputs[0]
        if tp > 1:
            grad = g.add(
                allreduce(f"{L}.bwd_ar", grad, f"{L}.bwd_ar.out", tp)
            ).outputs[0]

    # Optimizer step: one fused elementwise pass over all parameters.
    params = tensor("params", (cfg.param_count,), cfg.dtype, is_weight=True)
    g.add(elementwise("adam_update", [params, grad], "params.new", 6.0,
                      out_shape=(cfg.param_count,)))
    return g


def _layer_projections(cfg: TransformerConfig):
    """(name, fan_in, fan_out) of each weighted projection in a layer."""
    projections = [
        ("q", cfg.hidden, cfg.hidden),
        ("k", cfg.hidden, cfg.kv_dim),
        ("v", cfg.hidden, cfg.kv_dim),
        ("o", cfg.hidden, cfg.hidden),
        ("down", cfg.intermediate, cfg.hidden),
    ]
    if cfg.gated_mlp:
        projections += [
            ("gate", cfg.hidden, cfg.intermediate),
            ("up", cfg.hidden, cfg.intermediate),
        ]
    else:
        projections.append(("fc1", cfg.hidden, cfg.intermediate))
    return projections


def _check_args(cfg: TransformerConfig, batch: int, seq: int, tp: int) -> None:
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if seq < 1:
        raise ValueError(f"seq must be >= 1, got {seq}")
    if tp < 1:
        raise ValueError(f"tp must be >= 1, got {tp}")
    if seq > cfg.max_seq:
        raise ValueError(f"{cfg.name}: seq {seq} exceeds max_seq {cfg.max_seq}")
