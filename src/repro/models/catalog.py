"""The paper's benchmark model zoo (Table II).

Every model evaluated in the paper's case studies, specified from public
architecture hyperparameters. Parameter counts are validated against the
published sizes in tests/models/test_catalog.py.
"""

from __future__ import annotations

from typing import Dict

from repro.models.transformer import TransformerConfig

LLAMA2_7B = TransformerConfig(
    name="llama2-7b",
    hidden=4096,
    layers=32,
    heads=32,
    kv_heads=32,
    intermediate=11008,
    vocab=32000,
    max_seq=4096,
)

LLAMA2_13B = TransformerConfig(
    name="llama2-13b",
    hidden=5120,
    layers=40,
    heads=40,
    kv_heads=40,
    intermediate=13824,
    vocab=32000,
    max_seq=4096,
)

LLAMA2_70B = TransformerConfig(
    name="llama2-70b",
    hidden=8192,
    layers=80,
    heads=64,
    kv_heads=8,
    intermediate=28672,
    vocab=32000,
    max_seq=4096,
)

LLAMA3_8B = TransformerConfig(
    name="llama3-8b",
    hidden=4096,
    layers=32,
    heads=32,
    kv_heads=8,
    intermediate=14336,
    vocab=128256,
    max_seq=8192,
)

MISTRAL_7B = TransformerConfig(
    name="mistral-7b",
    hidden=4096,
    layers=32,
    heads=32,
    kv_heads=8,
    intermediate=14336,
    vocab=32000,
    max_seq=8192,
    sliding_window=4096,
)

FALCON_40B = TransformerConfig(
    name="falcon-40b",
    hidden=8192,
    layers=60,
    heads=128,
    kv_heads=8,
    intermediate=32768,
    vocab=65024,
    max_seq=2048,
    gated_mlp=False,
    norm_kind="layernorm",
)

BLOOM_176B = TransformerConfig(
    name="bloom-176b",
    hidden=14336,
    layers=70,
    heads=112,
    kv_heads=112,
    intermediate=57344,
    vocab=250880,
    max_seq=8192,
    gated_mlp=False,
    norm_kind="layernorm",
    positional="alibi",
)

#: sparseGPT: a 13B model trained with 87.5% weight sparsity (paper cites
#: the SambaNova sparse training work).
SPARSEGPT_13B = TransformerConfig(
    name="sparsegpt-13b",
    hidden=5120,
    layers=40,
    heads=40,
    kv_heads=40,
    intermediate=13824,
    vocab=32000,
    max_seq=2048,
    sparsity=0.875,
)

#: The CLIP ViT-L/14 vision tower used by LLaVA-1.5 (336px: 576 patches).
VIT_L_14 = TransformerConfig(
    name="vit-l-14",
    hidden=1024,
    layers=24,
    heads=16,
    kv_heads=16,
    intermediate=4096,
    vocab=1,  # no vocabulary: patches enter via a conv stem
    max_seq=1024,
    gated_mlp=False,
    norm_kind="layernorm",
    positional="alibi",  # learned positions; modelled as a bias add
)

#: LLaVA-1.5's language model is Vicuna-7B — a fine-tuned Llama2-7B.
LLAVA_15_LLM = TransformerConfig(
    name="llava-1.5-7b-llm",
    hidden=4096,
    layers=32,
    heads=32,
    kv_heads=32,
    intermediate=11008,
    vocab=32000,
    max_seq=4096,
)

#: Models keyed by catalogue name.
CATALOG: Dict[str, TransformerConfig] = {
    cfg.name: cfg
    for cfg in (
        LLAMA2_7B,
        LLAMA2_13B,
        LLAMA2_70B,
        LLAMA3_8B,
        MISTRAL_7B,
        FALCON_40B,
        BLOOM_176B,
        SPARSEGPT_13B,
        VIT_L_14,
        LLAVA_15_LLM,
    )
}


def get_model(name: str) -> TransformerConfig:
    """Look up a model config by name, with a helpful error."""
    try:
        return CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown model {name!r}; known: {known}") from None
