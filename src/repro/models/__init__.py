"""Workload models: the paper's Table II benchmark zoo."""

from repro.models.catalog import (
    BLOOM_176B,
    CATALOG,
    FALCON_40B,
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    LLAMA3_8B,
    LLAVA_15_LLM,
    MISTRAL_7B,
    SPARSEGPT_13B,
    VIT_L_14,
    get_model,
)
from repro.models.fftconv import fftconv_graph, monarch_fft_graph
from repro.models.llava import llava_decode_graph, llava_prefill_graph
from repro.models.moe import MoEConfig, mixtral_8x7b, moe_decode_graph
from repro.models.quantize import compression_ratio, quantize
from repro.models.sparse import sparsegpt_train_graph
from repro.models.transformer import (
    TransformerConfig,
    decode_graph,
    prefill_graph,
    train_graph,
)

__all__ = [
    "BLOOM_176B", "CATALOG", "FALCON_40B", "LLAMA2_7B", "LLAMA2_13B",
    "LLAMA2_70B", "LLAMA3_8B", "LLAVA_15_LLM", "MISTRAL_7B", "SPARSEGPT_13B", "VIT_L_14",
    "get_model", "fftconv_graph", "monarch_fft_graph", "llava_decode_graph",
    "llava_prefill_graph", "sparsegpt_train_graph", "TransformerConfig",
    "decode_graph", "prefill_graph", "train_graph", "MoEConfig",
    "mixtral_8x7b", "moe_decode_graph", "compression_ratio", "quantize",
]
