"""LLaVA-1.5 multimodal workload (Table II's llava1.5-multimodal row).

LLaVA-1.5 = CLIP ViT-L/14 vision tower + a 2-layer MLP projector + a
Vicuna-7B (Llama2-7B architecture) language model. Prefill runs the vision
tower over the image patches, projects them into the LLM embedding space,
and prefills the LLM over [image tokens + text tokens]; decode is ordinary
LLM decoding.
"""

from __future__ import annotations

from repro.dataflow.graph import DataflowGraph, DType
from repro.dataflow.operators import elementwise, linear, tensor
from repro.models.catalog import LLAVA_15_LLM, VIT_L_14
from repro.models.transformer import decode_graph, prefill_graph

#: ViT-L/14 at 336x336 resolution: (336/14)^2 = 576 image patches.
IMAGE_TOKENS = 576


def llava_prefill_graph(
    batch: int = 1, text_tokens: int = 512, tp: int = 1
) -> DataflowGraph:
    """Multimodal prefill: vision tower + projector + LLM prefill.

    The three phases are stitched into a single graph so fusion policies
    see the whole workload (the paper runs LLaVA as one benchmark).
    """
    if text_tokens < 1:
        raise ValueError(f"text_tokens must be >= 1, got {text_tokens}")
    g = DataflowGraph(f"llava1.5-prefill-b{batch}-t{text_tokens}")

    vision = prefill_graph(VIT_L_14, batch=batch, seq=IMAGE_TOKENS, tp=tp)
    for op in vision.topological_order():
        if op.name in ("lm_head", "sample"):
            continue  # the tower output is features, not logits
        g.add(_prefix(op, "vis:"))

    feats = tensor("vis:final_norm.out", (batch * IMAGE_TOKENS, VIT_L_14.hidden))
    proj1 = g.add(
        linear("proj.fc1", feats, "proj.fc1.w", VIT_L_14.hidden,
               LLAVA_15_LLM.hidden, batch * IMAGE_TOKENS)
    )
    act = g.add(elementwise("proj.gelu", [proj1.outputs[0]], "proj.gelu.out", 8.0))
    g.add(
        linear("proj.fc2", act.outputs[0], "proj.fc2.w", LLAVA_15_LLM.hidden,
               LLAVA_15_LLM.hidden, batch * IMAGE_TOKENS)
    )

    projected = g["proj.fc2"].outputs[0]
    llm = prefill_graph(
        LLAVA_15_LLM, batch=batch, seq=IMAGE_TOKENS + text_tokens, tp=tp
    )
    for op in llm.topological_order():
        renamed = _prefix(op, "llm:")
        if op.name == "embed":
            # The projected image features enter the LLM alongside the
            # text-token embeddings: this edge makes the multimodal graph
            # a single connected dataflow (vision -> projector -> LLM).
            renamed = _with_extra_input(renamed, projected)
        g.add(renamed)
    return g


def _with_extra_input(op, extra):
    """Clone an operator with one more (contiguous) input tensor."""
    from dataclasses import replace

    from repro.dataflow.graph import AccessPattern

    patterns = op.input_patterns or tuple(
        AccessPattern.CONTIGUOUS for _ in op.inputs
    )
    return replace(
        op,
        inputs=op.inputs + (extra,),
        input_patterns=patterns + (AccessPattern.CONTIGUOUS,),
    )


def llava_decode_graph(batch: int = 1, context: int = 1088, tp: int = 1) -> DataflowGraph:
    """Multimodal decode: once the image is prefilled, decode is pure LLM.

    Default context = 576 image tokens + 512 text tokens.
    """
    return decode_graph(LLAVA_15_LLM, batch=batch, context=context, tp=tp)


def _prefix(op, prefix: str):
    """Clone an operator with all tensor names prefixed (graph stitching)."""
    from dataclasses import replace

    def rename(t):
        return replace(t, name=prefix + t.name)

    return replace(
        op,
        name=prefix + op.name,
        inputs=tuple(rename(t) for t in op.inputs),
        outputs=tuple(rename(t) for t in op.outputs),
    )
