"""Sparse training workload (Table II's sparseGPT row).

The paper benchmarks training a 13B model with 87.5% weight sparsity
(citing SambaNova's sparse training work [67]). Sparsity lowers GEMM FLOPs
and weight storage proportionally, which *lowers operational intensity* —
making fusion even more valuable (Figure 11 shows sparseGPT among the most
aggressively fused benchmarks).
"""

from __future__ import annotations

from repro.dataflow.graph import DataflowGraph
from repro.models.catalog import SPARSEGPT_13B
from repro.models.transformer import TransformerConfig, train_graph


def sparsegpt_train_graph(
    batch: int = 1, seq: int = 2048, tp: int = 1
) -> DataflowGraph:
    """One sparseGPT-13B training step (87.5% sparse, 2K sequence)."""
    return train_graph(SPARSEGPT_13B, batch=batch, seq=seq, tp=tp)


def dense_counterpart(cfg: TransformerConfig) -> TransformerConfig:
    """The same architecture with sparsity removed, for ablations."""
    if cfg.sparsity == 0.0:
        return cfg
    return TransformerConfig(
        name=f"{cfg.name}-dense",
        hidden=cfg.hidden,
        layers=cfg.layers,
        heads=cfg.heads,
        kv_heads=cfg.kv_heads,
        intermediate=cfg.intermediate,
        vocab=cfg.vocab,
        max_seq=cfg.max_seq,
        gated_mlp=cfg.gated_mlp,
        norm_kind=cfg.norm_kind,
        positional=cfg.positional,
        sliding_window=cfg.sliding_window,
        sparsity=0.0,
        dtype=cfg.dtype,
    )


def sparsity_flop_ratio(cfg: TransformerConfig) -> float:
    """FLOP reduction factor of the sparse model vs its dense twin.

    For 87.5% sparsity this is 8x on the weighted GEMMs — the paper's
    sparse-training speedup headroom.
    """
    if not 0.0 <= cfg.sparsity < 1.0:
        raise ValueError(f"bad sparsity {cfg.sparsity}")
    return 1.0 / (1.0 - cfg.sparsity)
