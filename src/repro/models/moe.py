"""Mixture-of-Experts models as CoE experts.

The paper (Section II): "CoEs and MoEs are orthogonal techniques that can
be easily combined: a CoE can leverage expert models that are implemented
internally as MoEs." This module provides MoE model descriptors and graph
builders so a Samba-CoE expert can itself be a sparse MoE:

- all experts' FFN weights are stored (driving capacity and switch cost),
- only ``top_k`` experts' FFNs execute per token (driving FLOPs and, in
  decode, weight traffic — an MoE decode step reads only the routed
  experts' FFN weights plus all attention weights).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.graph import DataflowGraph, DType
from repro.dataflow.operators import (
    elementwise,
    linear,
    norm,
    reduction,
    softmax,
    tensor,
)
from repro.models.transformer import TransformerConfig, decode_graph


@dataclass(frozen=True)
class MoEConfig:
    """A sparse-MoE transformer: dense attention, ``num_experts`` FFNs."""

    name: str
    dense: TransformerConfig
    num_experts: int
    top_k: int

    def __post_init__(self) -> None:
        if self.num_experts < 1:
            raise ValueError(f"{self.name}: num_experts must be >= 1")
        if not 1 <= self.top_k <= self.num_experts:
            raise ValueError(
                f"{self.name}: top_k must be in [1, {self.num_experts}]"
            )

    @property
    def layers(self) -> int:
        return self.dense.layers

    @property
    def _mlp_params_per_layer(self) -> int:
        return self.dense.mlp_matrices * self.dense.hidden * self.dense.intermediate

    @property
    def _attn_params_per_layer(self) -> int:
        return (
            2 * self.dense.hidden * self.dense.hidden
            + 2 * self.dense.hidden * self.dense.kv_dim
            + 2 * self.dense.hidden  # norms
        )

    @property
    def _router_params_per_layer(self) -> int:
        return self.dense.hidden * self.num_experts

    @property
    def param_count(self) -> int:
        """Stored parameters: every expert's FFN counts."""
        embed = 2 * self.dense.vocab * self.dense.hidden
        per_layer = (
            self._attn_params_per_layer
            + self.num_experts * self._mlp_params_per_layer
            + self._router_params_per_layer
        )
        return embed + self.layers * per_layer + self.dense.hidden

    @property
    def active_param_count(self) -> int:
        """Parameters touched per token: only ``top_k`` experts execute."""
        embed = 2 * self.dense.vocab * self.dense.hidden
        per_layer = (
            self._attn_params_per_layer
            + self.top_k * self._mlp_params_per_layer
            + self._router_params_per_layer
        )
        return embed + self.layers * per_layer + self.dense.hidden

    @property
    def weight_bytes(self) -> int:
        """Stored bytes (what DDR hosting and model switching pay)."""
        return self.param_count * self.dense.dtype.size_bytes

    @property
    def active_weight_bytes(self) -> int:
        """Bytes read per decode step (what HBM bandwidth pays)."""
        return self.active_param_count * self.dense.dtype.size_bytes

    @property
    def sparsity_ratio(self) -> float:
        """Stored-to-active ratio — the MoE capacity/compute trade."""
        return self.param_count / self.active_param_count


def moe_ffn_subgraph(
    g: DataflowGraph,
    cfg: MoEConfig,
    layer: int,
    hidden_in,
    tokens: int,
) -> object:
    """Append one MoE FFN block: router -> top-k expert FFNs -> combine.

    Only the ``top_k`` routed experts contribute FLOPs and weight traffic;
    the router is a small linear plus softmax/top-k selection.
    """
    dense = cfg.dense
    L = f"l{layer}"
    router = g.add(
        linear(f"{L}.moe_router", hidden_in, f"{L}.moe_router.w",
               dense.hidden, cfg.num_experts, tokens, 0.0, dense.dtype)
    ).outputs[0]
    probs = g.add(softmax(f"{L}.moe_softmax", router, f"{L}.moe_probs")).outputs[0]
    g.add(
        reduction(f"{L}.moe_topk", probs, f"{L}.moe_sel", (tokens, cfg.top_k))
    )

    expert_outs = []
    for k in range(cfg.top_k):
        E = f"{L}.e{k}"
        gate = g.add(linear(f"{E}.gate", hidden_in, f"{E}.gate.w",
                            dense.hidden, dense.intermediate, tokens,
                            0.0, dense.dtype)).outputs[0]
        up = g.add(linear(f"{E}.up", hidden_in, f"{E}.up.w",
                          dense.hidden, dense.intermediate, tokens,
                          0.0, dense.dtype)).outputs[0]
        act = g.add(elementwise(f"{E}.silu", [gate], f"{E}.silu.out", 4.0)).outputs[0]
        mix = g.add(elementwise(f"{E}.mul", [act, up], f"{E}.mul.out", 1.0)).outputs[0]
        down = g.add(linear(f"{E}.down", mix, f"{E}.down.w",
                            dense.intermediate, dense.hidden, tokens,
                            0.0, dense.dtype)).outputs[0]
        expert_outs.append(down)

    combined = expert_outs[0]
    for k, other in enumerate(expert_outs[1:], start=1):
        combined = g.add(
            elementwise(f"{L}.moe_combine{k}", [combined, other],
                        f"{L}.moe_combined{k}", 2.0)
        ).outputs[0]
    return combined


def moe_decode_graph(cfg: MoEConfig, batch: int = 1, context: int = 2048,
                     tp: int = 1) -> DataflowGraph:
    """One MoE decode step: dense-attention layers with MoE FFN blocks.

    Built by taking the dense decode skeleton and replacing each layer's
    FFN with the MoE block. The resulting graph's weight traffic equals
    ``active_weight_bytes`` (only routed experts are read), while CoE
    hosting uses ``weight_bytes`` (all experts stored).
    """
    base = decode_graph(cfg.dense, batch=batch, context=context, tp=tp)
    g = DataflowGraph(f"{cfg.name}-decode-b{batch}-c{context}")
    skip_prefixes = ("gate", "up", "silu", "gate_mul", "fc1", "gelu", "down")
    resid_input: dict = {}
    for op in base.topological_order():
        parts = op.name.split(".")
        if len(parts) == 2 and parts[1] in skip_prefixes:
            continue  # dense FFN is replaced by the MoE block
        if len(parts) == 2 and parts[1] == "norm2":
            g.add(op)
            layer = int(parts[0][1:])
            combined = moe_ffn_subgraph(g, cfg, layer, op.outputs[0], batch)
            resid_input[parts[0]] = combined
            continue
        if len(parts) == 2 and parts[1] in ("ar_mlp", "resid2") and parts[0] in resid_input:
            from dataclasses import replace as _replace

            replacement = resid_input.pop(parts[0])
            new_inputs = (replacement,) + tuple(op.inputs[1:])
            op = _replace(op, inputs=new_inputs, input_patterns=())
        g.add(op)
    return g


#: A Mixtral-8x7B-like reference configuration (46.7B stored, 12.9B active).
def mixtral_8x7b() -> MoEConfig:
    from repro.models.catalog import MISTRAL_7B

    return MoEConfig(name="mixtral-8x7b", dense=MISTRAL_7B, num_experts=8, top_k=2)
