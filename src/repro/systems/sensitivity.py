"""Sensitivity analysis: how robust are the reproduced headlines?

A reproduction built on calibrated constants owes the reader an answer to
"how much does conclusion X depend on constant Y?". This module sweeps
calibration constants and reports whether each paper-anchored conclusion
survives:

- the **switch-speedup ratios** (31x / 15x) follow directly from the
  bandwidth constants — linear sensitivity, no tipping point,
- the **DGX latency cliff** and **OOM point** depend on capacity
  constants — they move but exist across the whole plausible range,
- the **fusion speedup direction** (fused < unfused time) holds for any
  efficiency ordering with eff_fused >= eff_unfused and any non-negative
  launch overhead — a structural, not calibrated, conclusion.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.models.catalog import LLAMA2_7B
from repro.perf.calibration import DEFAULT_CALIBRATION, Calibration


@dataclass(frozen=True)
class SweepPoint:
    """One conclusion evaluated at one constant setting."""

    value: float
    metric: float
    holds: bool


@dataclass
class SensitivityResult:
    """A conclusion's behaviour across a constant's sweep."""

    constant: str
    conclusion: str
    points: List[SweepPoint]

    @property
    def always_holds(self) -> bool:
        return all(p.holds for p in self.points)

    @property
    def metric_range(self) -> tuple:
        metrics = [p.metric for p in self.points]
        return (min(metrics), max(metrics))


def sweep_constant(
    constant: str,
    values: Sequence[float],
    conclusion: str,
    evaluate: Callable[[Calibration], tuple],
    base: Calibration = DEFAULT_CALIBRATION,
) -> SensitivityResult:
    """Evaluate ``evaluate(calibration) -> (metric, holds)`` over a sweep.

    ``constant`` must be a field of :class:`Calibration`.
    """
    if not hasattr(base, constant):
        raise ValueError(f"Calibration has no constant {constant!r}")
    points = []
    for value in values:
        calibration = dataclasses.replace(base, **{constant: value})
        metric, holds = evaluate(calibration)
        points.append(SweepPoint(value=value, metric=metric, holds=holds))
    return SensitivityResult(constant=constant, conclusion=conclusion, points=points)


# ----------------------------------------------------------------------
# The standard conclusions, packaged for benchmarks/tests
# ----------------------------------------------------------------------


def switch_ratio_sensitivity(
    spread: Sequence[float] = (0.8, 0.9, 1.0, 1.1, 1.2),
) -> SensitivityResult:
    """Paper: SN40L switches >=10x faster than a DGX A100.

    Swept over +-20% of the node's DDR->HBM bandwidth: the exact ratio
    moves linearly, the order-of-magnitude conclusion never flips.
    """
    base_bw = DEFAULT_CALIBRATION.node_ddr_to_hbm_bandwidth

    def evaluate(cal: Calibration):
        from repro.systems.platforms import dgx_a100_platform, sn40l_platform

        sn = sn40l_platform(cal)
        dgx = dgx_a100_platform(cal)
        ratio = dgx.switch_time(LLAMA2_7B.weight_bytes) / sn.switch_time(
            LLAMA2_7B.weight_bytes
        )
        return ratio, ratio >= 10.0

    return sweep_constant(
        "node_ddr_to_hbm_bandwidth",
        [base_bw * s for s in spread],
        "SN40L model switching is >=10x faster than DGX A100",
        evaluate,
    )


def decode_win_sensitivity(
    efficiencies: Sequence[float] = (0.70, 0.75, 0.80, 0.85, 0.90),
) -> SensitivityResult:
    """Paper: the SN40L decodes a 7B expert faster than a DGX A100.

    Swept over the fused HBM efficiency (the paper reports ~0.85): the
    win shrinks at lower sustained efficiency but holds well below it.
    """

    def evaluate(cal: Calibration):
        from repro.systems.platforms import dgx_a100_platform, sn40l_platform

        sn = sn40l_platform(cal).decode_token_time(LLAMA2_7B, 1, 1024)
        dgx = dgx_a100_platform(cal).decode_token_time(LLAMA2_7B, 1, 1024)
        ratio = dgx / sn
        return ratio, ratio > 1.0

    return sweep_constant(
        "fused_hbm_efficiency",
        list(efficiencies),
        "SN40L 7B decode beats DGX A100",
        evaluate,
    )


def oom_point_sensitivity(
    host_fractions: Sequence[float] = (0.8, 0.9, 1.0, 1.1, 1.2),
) -> Dict[float, int]:
    """Paper: the DGX runs out of memory around 150 experts.

    Swept over usable host-DRAM capacity (+-20%): the OOM point shifts
    with capacity (as it must) but stays within ~125-175 experts, far
    below the SN40L node's ~1000.
    """
    from repro.systems.platforms import dgx_a100_platform
    from repro.units import GiB

    base = dgx_a100_platform()
    reserved = LLAMA2_7B.weight_bytes + 8 * GiB
    results = {}
    for fraction in host_fractions:
        platform = dataclasses.replace(
            base,
            second_tier_capacity_bytes=int(
                base.second_tier_capacity_bytes * fraction
            ),
        )
        results[fraction] = platform.max_hosted_experts(
            LLAMA2_7B.weight_bytes, reserved
        )
    return results


def fusion_direction_sensitivity(
    unfused_efficiencies: Sequence[float] = (0.5, 0.6, 0.7, 0.8),
) -> SensitivityResult:
    """Structural conclusion: fused decode is faster than unfused decode
    for *any* unfused efficiency up to the fused one."""
    from repro.arch.config import SocketConfig
    from repro.dataflow import fusion
    from repro.models.transformer import decode_graph
    from repro.perf.kernel_cost import ExecutionTarget, Orchestration, cost_plan

    graph = decode_graph(LLAMA2_7B, batch=1, context=1024, tp=8)
    unfused_plan = fusion.unfused(graph)
    fused_plan = fusion.group_by_prefix(graph)

    def evaluate(cal: Calibration):
        target = ExecutionTarget.from_socket(SocketConfig(), sockets=8,
                                             calibration=cal)
        unf = cost_plan(unfused_plan, target, Orchestration.SOFTWARE).total_s
        fus = cost_plan(fused_plan, target, Orchestration.SOFTWARE).total_s
        ratio = unf / fus
        return ratio, ratio > 1.0

    return sweep_constant(
        "unfused_compute_efficiency",
        list(unfused_efficiencies),
        "fusion speeds up 7B decode",
        evaluate,
    )
