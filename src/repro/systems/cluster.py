"""Multi-node CoE serving: placement and load balancing across nodes.

The paper motivates the single-node SN40L deployment by the pain of the
alternative: "using more machines for HBM capacity ... increases costs,
complicates deployment, and introduces load balancing challenges"
(Section III-B). This module makes those challenges concrete — and shows
how a CoE scales *beyond* one node when it must:

- :func:`partition_experts` — shard an expert library across nodes,
  either contiguously or balanced by per-expert weight bytes,
- :class:`Cluster` — a set of serving nodes with an expert->node map;
  requests route to the owning node, and per-node queueing skew is the
  load-balancing cost the paper alludes to,
- :func:`replicate_hot_experts` — the classic mitigation: replicate the
  most-requested experts on every node so dispatch can pick the least
  loaded replica.

:meth:`Cluster.dispatch` is the *analytic baseline*: one request at a
time, serial switches, independent node clocks. The event-driven path —
batched engines on a shared simulator clock, work stealing, and online
replication that pays its DDR->HBM copy — lives in
:mod:`repro.coe.cluster_engine` and is what the scaling benchmarks run.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # the coe package imports systems.platforms, so cluster
    # defers its coe imports to call time to keep the layering acyclic.
    from repro.coe.expert import ExpertLibrary, ExpertProfile
    from repro.coe.serving import ExpertServer


def partition_experts(
    library: "ExpertLibrary", num_nodes: int, balanced: bool = True
) -> List[List["ExpertProfile"]]:
    """Split a library across nodes.

    ``balanced`` assigns each expert to the currently lightest node by
    weight bytes (greedy bin packing over a min-heap — near-optimal for
    equal-size experts and good for heterogeneous ones); otherwise experts
    are dealt out contiguously in even runs (shard sizes differ by at most
    one). Either way shards only come up empty when ``num_nodes`` exceeds
    the library size, which draws a warning.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    if num_nodes > len(library):
        warnings.warn(
            f"num_nodes={num_nodes} exceeds the library size {len(library)}; "
            f"{num_nodes - len(library)} shard(s) will be empty",
            stacklevel=2,
        )
    shards: List[List["ExpertProfile"]] = [[] for _ in range(num_nodes)]
    if not balanced:
        base, extra = divmod(len(library), num_nodes)
        start = 0
        for idx in range(num_nodes):
            size = base + (1 if idx < extra else 0)
            shards[idx] = list(library.experts[start : start + size])
            start += size
        return shards
    # (load, index) pairs of equal loads form a valid heap as-is; ties pop
    # the lowest index, matching the old loads.index(min(loads)) scan.
    heap: List[Tuple[int, int]] = [(0, idx) for idx in range(num_nodes)]
    for expert in sorted(library.experts, key=lambda e: -e.weight_bytes):
        load, target = heapq.heappop(heap)
        shards[target].append(expert)
        heapq.heappush(heap, (load + expert.weight_bytes, target))
    return shards


@dataclass
class NodeState:
    """One serving node: its server plus a work-completion clock."""

    name: str
    server: "ExpertServer"
    busy_until_s: float = 0.0
    requests_served: int = 0


@dataclass(frozen=True)
class DispatchRecord:
    """Where one request went and when it finished."""

    expert: str
    node: str
    start_s: float
    finish_s: float

    @property
    def latency_s(self) -> float:
        return self.finish_s - self.start_s


class Cluster:
    """A multi-node CoE deployment with expert-ownership dispatch."""

    def __init__(
        self,
        platform_factory,
        library: "ExpertLibrary",
        num_nodes: int,
        balanced: bool = True,
    ) -> None:
        from repro.coe.expert import ExpertLibrary
        from repro.coe.serving import ExpertServer

        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        self.library = library
        shards = partition_experts(library, num_nodes, balanced=balanced)
        self.nodes: List[NodeState] = []
        self._owners: Dict[str, List[int]] = {}
        for shard in shards:
            if not shard:
                continue
            shard_library = ExpertLibrary(experts=list(shard))
            # Node names stay dense even when empty shards were dropped.
            node_index = len(self.nodes)
            node = NodeState(
                name=f"node{node_index}",
                server=ExpertServer(platform_factory(), shard_library),
            )
            self.nodes.append(node)
            for expert in shard:
                self._owners.setdefault(expert.name, []).append(node_index)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def owners_of(self, expert: "ExpertProfile") -> List[NodeState]:
        try:
            return [self.nodes[i] for i in self._owners[expert.name]]
        except KeyError:
            raise KeyError(f"no node hosts expert {expert.name!r}") from None

    def replicate(self, expert: "ExpertProfile") -> None:
        """Host ``expert`` on every node (hot-expert mitigation)."""
        for idx, node in enumerate(self.nodes):
            if idx in self._owners.get(expert.name, []):
                continue
            node.server.library.add(expert)
            self._owners.setdefault(expert.name, []).append(idx)

    def dispatch(
        self,
        experts: Sequence["ExpertProfile"],
        output_tokens: int = 20,
        prompt_tokens: int = 256,
    ) -> List[DispatchRecord]:
        """Serve a request stream, one request at a time (analytic baseline).

        Each request goes to the least-loaded node hosting its expert
        (ties resolve to the lowest node index, deterministically); node
        clocks advance independently, so skewed expert popularity shows
        up directly as queueing delay on the hot node. For the batched,
        overlapped, shared-clock path use
        :class:`repro.coe.cluster_engine.ClusterEngine`.
        """
        records: List[DispatchRecord] = []
        for expert in experts:
            owners = self.owners_of(expert)
            node = min(owners, key=lambda n: n.busy_until_s)
            result = node.server.serve_experts(
                [expert], output_tokens=output_tokens, prompt_tokens=prompt_tokens
            )
            start = node.busy_until_s
            finish = start + result.total_s
            node.busy_until_s = finish
            node.requests_served += 1
            records.append(
                DispatchRecord(
                    expert=expert.name, node=node.name,
                    start_s=start, finish_s=finish,
                )
            )
        return records

    def makespan_s(self) -> float:
        """When the busiest node finishes its queue."""
        return max((n.busy_until_s for n in self.nodes), default=0.0)

    def load_imbalance(self) -> float:
        """Busiest-to-average node busy-time ratio (1.0 = perfect)."""
        times = [n.busy_until_s for n in self.nodes]
        mean = sum(times) / len(times) if times else 0.0
        if mean == 0.0:
            return 1.0
        return max(times) / mean


def replicate_hot_experts(
    cluster: Cluster, request_counts: Dict[str, int], top_n: int = 1
) -> List[str]:
    """Replicate the ``top_n`` most-requested experts on every node.

    Returns the replicated expert names. This is the standard mitigation
    for the load-balancing problem of sharded multi-node serving.
    """
    if top_n < 0:
        raise ValueError(f"top_n must be >= 0, got {top_n}")
    hot = sorted(request_counts, key=lambda n: -request_counts[n])[:top_n]
    for name in hot:
        cluster.replicate(cluster.library[name])
    return hot
