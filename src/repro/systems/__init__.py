"""Deployment platforms and system-footprint analysis."""

from repro.systems.cluster import (
    Cluster,
    DispatchRecord,
    partition_experts,
    replicate_hot_experts,
)
from repro.systems.footprint import (
    FootprintPoint,
    dgx_nodes_required,
    footprint_sweep,
    max_experts_single_node,
    sn40l_nodes_required,
)
from repro.systems.sensitivity import (
    SensitivityResult,
    decode_win_sensitivity,
    fusion_direction_sensitivity,
    oom_point_sensitivity,
    sweep_constant,
    switch_ratio_sensitivity,
)
from repro.systems.platforms import (
    Platform,
    dgx_a100_platform,
    dgx_h100_platform,
    gh200_capacity_bytes,
    sn40l_platform,
)

__all__ = [
    "Cluster", "DispatchRecord", "partition_experts",
    "replicate_hot_experts",
    "FootprintPoint", "dgx_nodes_required", "footprint_sweep",
    "max_experts_single_node", "sn40l_nodes_required", "Platform",
    "dgx_a100_platform", "dgx_h100_platform", "gh200_capacity_bytes",
    "sn40l_platform", "SensitivityResult", "decode_win_sensitivity",
    "fusion_direction_sensitivity", "oom_point_sensitivity",
    "sweep_constant", "switch_ratio_sensitivity",
]
