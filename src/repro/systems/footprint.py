"""System-footprint analysis (paper Figure 13).

Question: how many nodes of each platform are needed to serve a CoE of N
experts *while sustaining the TP8 single-model latency*?

- On a DGX, sustaining TP8 latency means *no host-DRAM expert copies*: all
  experts must reside in GPU HBM, so the footprint grows with HBM capacity.
- On the SN40L, the DDR tier holds every expert and the DDR->HBM switch
  cost is part of the sustained latency, so one node serves the CoE until
  DDR capacity runs out. The paper: one node holds up to 850 experts; the
  same CoE needs 19 DGX nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.systems.platforms import Platform


@dataclass(frozen=True)
class FootprintPoint:
    """Nodes required on one platform for one expert count."""

    platform: str
    num_experts: int
    nodes: int


def dgx_nodes_required(
    platform: Platform, num_experts: int, expert_bytes: int, reserved_bytes: int = 0
) -> int:
    """DGX nodes to hold ``num_experts`` entirely in HBM.

    Sustaining TP8 latency forbids host-DRAM copies, so HBM capacity is the
    only resource that counts.
    """
    if num_experts < 0:
        raise ValueError(f"negative expert count: {num_experts}")
    if num_experts == 0:
        return 0
    per_node = platform.hbm_expert_slots(expert_bytes, reserved_bytes)
    if per_node == 0:
        raise ValueError(
            f"{platform.name}: one expert ({expert_bytes} B) does not fit in HBM"
        )
    return math.ceil(num_experts / per_node)


def sn40l_nodes_required(
    platform: Platform, num_experts: int, expert_bytes: int, reserved_bytes: int = 0
) -> int:
    """SN40L nodes to *hold* ``num_experts`` (DDR capacity, HBM reserved).

    The DDR->HBM switch is fast enough to be inside the TP8 latency budget
    (quantified by the Figure 12 benchmark), so DDR capacity is the limit.
    """
    if num_experts < 0:
        raise ValueError(f"negative expert count: {num_experts}")
    if num_experts == 0:
        return 0
    per_node = platform.max_hosted_experts(expert_bytes, reserved_bytes)
    if per_node == 0:
        raise ValueError(f"{platform.name}: one expert does not fit")
    return math.ceil(num_experts / per_node)


def max_experts_single_node(
    platform: Platform, expert_bytes: int, reserved_bytes: int = 0, hbm_only: bool = False
) -> int:
    """Largest CoE one node can serve at TP8 latency."""
    if hbm_only:
        return platform.hbm_expert_slots(expert_bytes, reserved_bytes)
    return platform.max_hosted_experts(expert_bytes, reserved_bytes)


def footprint_sweep(
    platforms_hbm_only: List[Platform],
    platform_tiered: Platform,
    expert_counts: List[int],
    expert_bytes: int,
    reserved_bytes: int = 0,
) -> List[FootprintPoint]:
    """Figure 13's sweep: nodes vs expert count for every platform."""
    points: List[FootprintPoint] = []
    for count in expert_counts:
        for platform in platforms_hbm_only:
            points.append(
                FootprintPoint(
                    platform=platform.name,
                    num_experts=count,
                    nodes=dgx_nodes_required(platform, count, expert_bytes, reserved_bytes),
                )
            )
        points.append(
            FootprintPoint(
                platform=platform_tiered.name,
                num_experts=count,
                nodes=sn40l_nodes_required(
                    platform_tiered, count, expert_bytes, reserved_bytes
                ),
            )
        )
    return points
