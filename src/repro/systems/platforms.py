"""Platform models: SN40L Node, DGX A100, DGX H100 (and GH200 capacity).

The paper compares Samba-CoE on one SN40L node against DGX A100 and DGX
H100 nodes, estimating DGX latencies from published specs (its Section
VI-B; we do the same — see DESIGN.md's substitution table):

==============  ==========  ==========  ============ =================
platform        HBM         HBM BW      2nd tier     switch bandwidth
==============  ==========  ==========  ============ =================
SN40L node      512 GiB     16 TB/s     12 TiB DDR   1.05 TB/s (paper: >1 TB/s)
DGX A100        640 GB      16.3 TB/s   2 TB host    32 GB/s  (PCIe gen4 path)
DGX H100        640 GB      26.8 TB/s   2 TB host    64 GB/s  (PCIe gen5 path)
==============  ==========  ==========  ============ =================

Decode-time models are roofline-based with platform-specific sustained
efficiencies and overheads (tensor-parallel all-reduce latency per layer,
kernel launch overhead); constants live in
:mod:`repro.perf.calibration` and are pinned by calibration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.arch.config import sn40l_node
from repro.models.transformer import TransformerConfig
from repro.perf.calibration import DEFAULT_CALIBRATION, Calibration
from repro.perf.roofline import Roofline
from repro.units import GB, GiB, TB, TiB

#: Cache bounds for the memoized timing methods below. The roofline cache
#: holds one entry per platform instance; the per-(model, batch, ...) cost
#: caches are sized for a large sweep point (hundreds of experts x a
#: handful of batch/context shapes) without letting a multi-point sweep in
#: one process grow them forever. ``clear_cost_caches()`` resets them
#: between grid points.
_ROOFLINE_CACHE_SIZE = 64
_COST_CACHE_SIZE = 65536


@dataclass(frozen=True)
class Platform:
    """One deployment node for CoE serving comparison."""

    name: str
    sockets: int
    hbm_capacity_bytes: int
    hbm_bandwidth: float
    peak_flops: float
    #: Capacity of the tier experts overflow into (SN40L: accelerator-local
    #: DDR; DGX: host DRAM behind PCIe).
    second_tier_capacity_bytes: int
    #: Bandwidth of one expert copy from the second tier into HBM.
    switch_bandwidth: float
    #: Sustained fraction of HBM bandwidth during decode.
    decode_hbm_efficiency: float
    #: Sustained fraction of peak FLOPs during prefill.
    compute_efficiency: float
    #: Per-layer latency of one tensor-parallel collective during decode.
    allreduce_latency_s: float
    #: Per-kernel launch overhead during decode (per decoder layer).
    launch_overhead_s: float
    #: Latency floor for one model switch (driver + DMA setup).
    switch_latency_s: float = 50e-6

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    def hbm_expert_slots(self, expert_bytes: int, reserved_bytes: int = 0) -> int:
        """How many experts fit in HBM alongside ``reserved_bytes``."""
        if expert_bytes <= 0:
            raise ValueError(f"expert_bytes must be positive, got {expert_bytes}")
        usable = self.hbm_capacity_bytes - reserved_bytes
        return max(0, usable // expert_bytes)

    def max_hosted_experts(self, expert_bytes: int, reserved_bytes: int = 0) -> int:
        """Experts one node can *hold* across HBM + the second tier.

        Beyond this, the node is out of memory — the paper's "DGX OOM"
        row at >150 experts.
        """
        usable = (
            self.hbm_capacity_bytes
            - reserved_bytes
            + self.second_tier_capacity_bytes
        )
        return max(0, usable // expert_bytes)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @lru_cache(maxsize=_ROOFLINE_CACHE_SIZE)
    def roofline(self) -> Roofline:
        """The platform's effective roofline at sustained efficiencies.

        Shared core with the kernel cost model
        (:meth:`repro.perf.kernel_cost.ExecutionTarget.roofline`): both
        derate one :class:`repro.perf.roofline.Roofline` instead of
        re-deriving compute/memory terms locally.
        """
        return Roofline(
            name=self.name,
            peak_flops=self.peak_flops,
            mem_bandwidth=self.hbm_bandwidth,
        ).with_efficiency(
            self.compute_efficiency, self.decode_hbm_efficiency, name=self.name
        )

    def step_overhead_s(self, layers: int) -> float:
        """Per-decode-step fixed costs: collectives + kernel launches."""
        return layers * (2 * self.allreduce_latency_s + self.launch_overhead_s)

    def switch_time(self, weight_bytes: int) -> float:
        """Copy one expert's weights from the second tier into HBM."""
        if weight_bytes < 0:
            raise ValueError(f"negative weight bytes: {weight_bytes}")
        if weight_bytes == 0:
            return 0.0
        return self.switch_latency_s + weight_bytes / self.switch_bandwidth

    @lru_cache(maxsize=_COST_CACHE_SIZE)
    def decode_token_time(
        self,
        model: TransformerConfig,
        batch: int = 1,
        context: int = 1024,
    ) -> float:
        """One autoregressive decode step, TP across all sockets.

        Memory-bound: reads all weights plus the KV cache of every sample,
        plus per-layer collective latency and launch overheads. Memoized on
        ``(model, batch, context)`` — both argument types are frozen
        dataclasses, and expert sweeps re-evaluate the same roofline terms
        for every expert of a given architecture.
        """
        if batch < 1 or context < 0:
            raise ValueError("batch must be >= 1 and context >= 0")
        roofline = self.roofline()
        weight_traffic = model.weight_bytes
        kv_traffic = batch * context * model.kv_bytes_per_token()
        return (
            roofline.time(2.0 * model.param_count * batch,
                          weight_traffic + kv_traffic)
            + self.step_overhead_s(model.layers)
        )

    @lru_cache(maxsize=_COST_CACHE_SIZE)
    def prefill_time(
        self, model: TransformerConfig, batch: int = 1, seq: int = 1024
    ) -> float:
        """Prompt processing (first token): compute-bound. Memoized."""
        if batch < 1 or seq < 1:
            raise ValueError("batch and seq must be >= 1")
        flops = 2.0 * model.param_count * batch * seq
        return (
            self.roofline().time(flops, model.weight_bytes)
            + model.layers * self.launch_overhead_s
        )

    @lru_cache(maxsize=_COST_CACHE_SIZE)
    def decode_span_time(
        self,
        model: TransformerConfig,
        output_tokens: int,
        batch: int = 1,
        prompt: int = 256,
    ) -> float:
        """Closed-form sum of ``decode_token_time`` over a growing context.

        Each decode step is ``max(memory_s(c), compute_s) + overhead_s``
        where only the memory term depends on the context ``c``, and it is
        affine in ``c`` (weights plus a per-token KV read). Since the
        memory term is non-decreasing, the steps split into a compute-bound
        prefix and a memory-bound suffix: the prefix contributes
        ``k * compute_s`` and the suffix is an arithmetic series with an
        exact closed form. The crossover index is found by binary search on
        the *same float expression* the per-token loop evaluates, so the
        partition matches the loop exactly; agreement is asserted in
        ``tests/systems/test_decode_closed_form.py``.
        """
        if output_tokens < 0:
            raise ValueError(f"negative output_tokens: {output_tokens}")
        if batch < 1 or prompt < 0:
            raise ValueError("batch must be >= 1 and prompt >= 0")
        if output_tokens == 0:
            return 0.0
        roofline = self.roofline()
        bw = roofline.mem_bandwidth
        weight_traffic = model.weight_bytes
        kv_per_token = batch * model.kv_bytes_per_token()
        compute_s = roofline.compute_time(2.0 * model.param_count * batch)
        overhead_s = self.step_overhead_s(model.layers)

        def memory_s(step: int) -> float:
            # Bit-identical to the memory term of decode_token_time.
            return (weight_traffic + (prompt + step) * kv_per_token) / bw

        # First step whose memory term reaches compute_s (binary search on
        # a monotone predicate; O(log T) instead of the loop's O(T)).
        lo, hi = 0, output_tokens
        while lo < hi:
            mid = (lo + hi) // 2
            if memory_s(mid) >= compute_s:
                hi = mid
            else:
                lo = mid + 1
        compute_steps = lo
        total = compute_steps * compute_s
        memory_steps = output_tokens - compute_steps
        if memory_steps:
            first = prompt + compute_steps
            last = prompt + output_tokens - 1
            context_sum = (first + last) * memory_steps // 2  # exact int
            total += (
                memory_steps * weight_traffic + context_sum * kv_per_token
            ) / bw
        return total + output_tokens * overhead_s

    def generate_time(
        self,
        model: TransformerConfig,
        output_tokens: int,
        batch: int = 1,
        prompt: int = 256,
    ) -> float:
        """Prefill + ``output_tokens`` decode steps with a growing cache."""
        if output_tokens < 0:
            raise ValueError(f"negative output_tokens: {output_tokens}")
        return self.prefill_time(model, batch, prompt) + self.decode_span_time(
            model, output_tokens, batch, prompt
        )

    # ------------------------------------------------------------------
    # Vectorized timing (array-in / array-out)
    # ------------------------------------------------------------------
    # Same formulas as the memoized scalar methods above, evaluated
    # elementwise over whole request batches in one numpy call. The op
    # order mirrors the scalar expressions and all integer intermediates
    # stay below 2**53, so int64->float64 conversion and float64
    # division round identically to the scalar path — the results are
    # bitwise-equal, which ``tests/systems/test_vectorized_costs.py``
    # asserts against the scalar methods.

    def prefill_time_batch(
        self, model: TransformerConfig, batch, seq
    ) -> np.ndarray:
        """Elementwise :meth:`prefill_time` over batch/seq arrays."""
        batch = np.asarray(batch, dtype=np.int64)
        seq = np.asarray(seq, dtype=np.int64)
        if np.any(batch < 1) or np.any(seq < 1):
            raise ValueError("batch and seq must be >= 1")
        flops = 2.0 * model.param_count * batch * seq
        roofline = self.roofline()
        return (
            np.maximum(
                flops / roofline.peak_flops,
                model.weight_bytes / roofline.mem_bandwidth,
            )
            + model.layers * self.launch_overhead_s
        )

    def decode_token_time_batch(
        self, model: TransformerConfig, batch, context
    ) -> np.ndarray:
        """Elementwise :meth:`decode_token_time` over batch/context arrays."""
        batch = np.asarray(batch, dtype=np.int64)
        context = np.asarray(context, dtype=np.int64)
        if np.any(batch < 1) or np.any(context < 0):
            raise ValueError("batch must be >= 1 and context >= 0")
        roofline = self.roofline()
        traffic = model.weight_bytes + batch * context * model.kv_bytes_per_token()
        return (
            np.maximum(
                2.0 * model.param_count * batch / roofline.peak_flops,
                traffic / roofline.mem_bandwidth,
            )
            + self.step_overhead_s(model.layers)
        )

    def decode_span_time_batch(
        self, model: TransformerConfig, output_tokens, batch, prompt
    ) -> np.ndarray:
        """Elementwise :meth:`decode_span_time` over request arrays.

        The scalar method finds the compute/memory crossover step by
        binary search on the float memory-time expression. Here the
        crossover is seeded algebraically (one division) and corrected by
        a monotone fix-up loop on the *same float predicate*, so every
        element lands on exactly the step the binary search would find —
        usually in zero or one iteration, since the algebraic seed is off
        by at most a few ulps of rounding.
        """
        output_tokens = np.asarray(output_tokens, dtype=np.int64)
        batch = np.asarray(batch, dtype=np.int64)
        prompt = np.asarray(prompt, dtype=np.int64)
        if np.any(output_tokens < 0):
            raise ValueError("negative output_tokens in batch")
        if np.any(batch < 1) or np.any(prompt < 0):
            raise ValueError("batch must be >= 1 and prompt >= 0")
        output_tokens, batch, prompt = np.broadcast_arrays(
            output_tokens, batch, prompt
        )
        roofline = self.roofline()
        bw = roofline.mem_bandwidth
        weight_traffic = model.weight_bytes
        kv_per_token = batch * model.kv_bytes_per_token()
        compute_s = 2.0 * model.param_count * batch / roofline.peak_flops
        overhead_s = self.step_overhead_s(model.layers)

        def memory_reaches_compute(step: np.ndarray) -> np.ndarray:
            # Bit-identical to the scalar search predicate.
            return (
                weight_traffic + (prompt + step) * kv_per_token
            ) / bw >= compute_s

        # Algebraic seed for the first memory-bound step, then fix up
        # against the float predicate (monotone in step, so each loop
        # terminates; in practice the seed is off by <= 1).
        with np.errstate(invalid="ignore"):
            seed = np.ceil(
                (compute_s * bw - weight_traffic) / np.maximum(kv_per_token, 1)
                - prompt
            )
        crossover = np.clip(
            np.nan_to_num(seed, nan=0.0, posinf=0.0, neginf=0.0),
            0,
            output_tokens,
        ).astype(np.int64)
        while True:
            down = (crossover > 0) & memory_reaches_compute(crossover - 1)
            if not down.any():
                break
            crossover = np.where(down, crossover - 1, crossover)
        while True:
            up = (crossover < output_tokens) & ~memory_reaches_compute(crossover)
            if not up.any():
                break
            crossover = np.where(up, crossover + 1, crossover)

        compute_steps = crossover
        total = compute_steps * compute_s
        memory_steps = output_tokens - compute_steps
        first = prompt + compute_steps
        last = prompt + output_tokens - 1
        context_sum = (first + last) * memory_steps // 2  # exact int
        total = total + np.where(
            memory_steps > 0,
            (memory_steps * weight_traffic + context_sum * kv_per_token) / bw,
            0.0,
        )
        return np.where(
            output_tokens > 0, total + output_tokens * overhead_s, 0.0
        )

    def switch_time_batch(self, weight_bytes) -> np.ndarray:
        """Elementwise :meth:`switch_time` over an array of weight sizes."""
        weight_bytes = np.asarray(weight_bytes, dtype=np.int64)
        if np.any(weight_bytes < 0):
            raise ValueError("negative weight bytes in batch")
        return np.where(
            weight_bytes == 0,
            0.0,
            self.switch_latency_s + weight_bytes / self.switch_bandwidth,
        )


def sn40l_platform(calibration: Calibration = DEFAULT_CALIBRATION) -> Platform:
    """The 8-socket SN40L node with a fused (HW-orchestrated) decoder.

    The fused decoder saturates ~85% of HBM bandwidth with one kernel per
    layer and fused collectives (paper Section VI-B).
    """
    node = sn40l_node()
    return Platform(
        name="SN40L-Node",
        sockets=node.sockets,
        hbm_capacity_bytes=node.hbm_capacity_bytes,
        hbm_bandwidth=node.hbm_bandwidth,
        peak_flops=node.peak_flops,
        second_tier_capacity_bytes=node.ddr_capacity_bytes,
        switch_bandwidth=calibration.node_ddr_to_hbm_bandwidth,
        decode_hbm_efficiency=calibration.fused_hbm_efficiency,
        compute_efficiency=calibration.fused_compute_efficiency,
        allreduce_latency_s=calibration.p2p_latency_s / 2,  # fused/overlapped
        launch_overhead_s=calibration.hw_launch_s,
    )


def dgx_a100_platform(calibration: Calibration = DEFAULT_CALIBRATION) -> Platform:
    """DGX A100: 8x A100-80GB, published specs."""
    return Platform(
        name="DGX-A100",
        sockets=8,
        hbm_capacity_bytes=8 * 80 * GiB,
        hbm_bandwidth=8 * 2.039 * TB,  # per-GPU HBM2e bandwidth
        peak_flops=8 * 312e12,
        # 2 TB installed; ~1.2 TiB usable for pinned expert weights after
        # OS, framework, and buffer overheads — which puts the OOM point at
        # the paper's reported 150-expert limit.
        second_tier_capacity_bytes=int(1.2 * TiB),
        switch_bandwidth=calibration.dgx_a100_host_to_hbm,
        decode_hbm_efficiency=calibration.gpu_a100_decode_hbm_efficiency,
        compute_efficiency=calibration.gpu_compute_efficiency,
        allreduce_latency_s=calibration.gpu_allreduce_latency_s,
        launch_overhead_s=calibration.gpu_launch_overhead_s,
    )


def dgx_h100_platform(calibration: Calibration = DEFAULT_CALIBRATION) -> Platform:
    """DGX H100: 8x H100-80GB, published specs."""
    return Platform(
        name="DGX-H100",
        sockets=8,
        hbm_capacity_bytes=8 * 80 * GiB,
        hbm_bandwidth=8 * 3.35 * TB,  # per-GPU HBM3 bandwidth
        peak_flops=8 * 989e12,
        # 2 TB installed; ~1.2 TiB usable for pinned expert weights after
        # OS, framework, and buffer overheads — which puts the OOM point at
        # the paper's reported 150-expert limit.
        second_tier_capacity_bytes=int(1.2 * TiB),
        switch_bandwidth=calibration.dgx_h100_host_to_hbm,
        decode_hbm_efficiency=calibration.gpu_h100_decode_hbm_efficiency,
        compute_efficiency=calibration.gpu_compute_efficiency,
        allreduce_latency_s=calibration.gpu_allreduce_latency_s / 2,  # NVLink4
        launch_overhead_s=calibration.gpu_launch_overhead_s,
    )


def clear_cost_caches() -> None:
    """Reset the memoized platform timing caches.

    Long-lived processes that sweep many grid points (notably the
    :mod:`repro.bench.sweep` runner) call this between points so cached
    entries from one configuration neither leak memory across the sweep
    nor let one point's working set evict another's mid-measurement.
    """
    Platform.roofline.cache_clear()
    Platform.decode_token_time.cache_clear()
    Platform.prefill_time.cache_clear()
    Platform.decode_span_time.cache_clear()


def cost_cache_info() -> dict:
    """Current hit/miss/size counters of every memoized timing cache."""
    return {
        "roofline": Platform.roofline.cache_info(),
        "decode_token_time": Platform.decode_token_time.cache_info(),
        "prefill_time": Platform.prefill_time.cache_info(),
        "decode_span_time": Platform.decode_span_time.cache_info(),
    }


def gh200_capacity_bytes() -> int:
    """Aggregate memory per GH200 socket (96 GB HBM3 + 480 GB LPDDR5X).

    The paper notes the SN40L has ~2.5x higher aggregate capacity per
    socket: (64 GiB HBM + 1.5 TiB DDR) / 576 GB ~ 2.6.
    """
    return 96 * GB + 480 * GB
