"""Unit constants and helpers shared across the library.

The library uses a single, consistent set of base units:

- **bytes** for capacities and data sizes,
- **bytes/second** for bandwidths,
- **seconds** for times and latencies,
- **FLOPs** (floating point operations) for compute work.

Helpers in this module convert between human-friendly magnitudes
(``GiB``, ``TB/s``, microseconds) and the base units.
"""

from __future__ import annotations

# Binary (power-of-two) capacity units, used for memory capacities.
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# Decimal (power-of-ten) units, used for bandwidths and FLOP rates, matching
# vendor datasheet conventions (1 TB/s = 1e12 bytes/s, 1 TFLOPS = 1e12 FLOP/s).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KFLOPS = 1e3
MFLOPS = 1e6
GFLOPS = 1e9
TFLOPS = 1e12

# Time units (base unit: second).
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9


def to_mib(num_bytes: float) -> float:
    """Convert bytes to MiB."""
    return num_bytes / MiB


def to_gib(num_bytes: float) -> float:
    """Convert bytes to GiB."""
    return num_bytes / GiB


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * 1e6


def fmt_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``'64.0 GiB'``."""
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or suffix == "TiB":
            return f"{value:.1f} {suffix}"
        value /= 1024
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Render a duration with an adaptive suffix, e.g. ``'1.2 ms'``."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= MILLISECOND:
        return f"{seconds / MILLISECOND:.2f} ms"
    if seconds >= MICROSECOND:
        return f"{seconds / MICROSECOND:.2f} us"
    return f"{seconds / NANOSECOND:.1f} ns"


def fmt_bandwidth(bytes_per_second: float) -> str:
    """Render a bandwidth with a decimal suffix, e.g. ``'2.0 TB/s'``."""
    value = float(bytes_per_second)
    for suffix in ("B/s", "KB/s", "MB/s", "GB/s", "TB/s"):
        if abs(value) < 1000 or suffix == "TB/s":
            return f"{value:.1f} {suffix}"
        value /= 1000
    raise AssertionError("unreachable")
