"""Reproduction of "SambaNova SN40L: Scaling the AI Memory Wall with
Dataflow and Composition of Experts" (MICRO 2024).

The library models the full system described in the paper:

- :mod:`repro.arch` — the SN40L RDU: PCUs, PMUs, AGCUs, the RDN
  interconnect, tiles, sockets, and the 8-socket node,
- :mod:`repro.memory` — the three-tier memory system and the static
  allocator with lifetime-based reuse and bandwidth-ranked spilling,
- :mod:`repro.dataflow` — operator graphs, fusion policies (unfused /
  conventional / streaming-dataflow), operational-intensity analysis,
  spatial placement, and pipeline throughput analysis,
- :mod:`repro.perf` — roofline and kernel cost models with calibration,
- :mod:`repro.sim` — a discrete-event simulator for streamed pipelines,
- :mod:`repro.models` — the Table II workload zoo (Llama2, Mistral,
  Falcon, Bloom, LLaVA, sparseGPT, FlashFFTConv),
- :mod:`repro.coe` — Samba-CoE: experts, router, LRU runtime, serving,
- :mod:`repro.systems` — platform models (SN40L node, DGX A100/H100) and
  footprint analysis,
- :mod:`repro.core` — the compile/run API tying it all together.

Quickstart::

    from repro import compile_model, Session
    from repro.models import LLAMA2_7B, decode_graph

    graph = decode_graph(LLAMA2_7B, batch=1, context=2048, tp=8)
    model = compile_model(graph, sockets=8, policy="streaming")
    result = Session(sockets=8).run(model)
    print(result.summary())

Serving (single node or fault-tolerant cluster, one entry point)::

    import repro
    from repro.coe import build_samba_coe_library, zipf_request_stream
    from repro.systems.platforms import sn40l_platform

    library = build_samba_coe_library(32)
    requests = zipf_request_stream(library, 256, alpha=1.1, seed=7)
    config = repro.ServeConfig(num_nodes=8, faults=["node3:2.5"])
    report = repro.serve(sn40l_platform, library, requests, config)
    print(report.goodput_tokens_per_second)
"""

from repro.core.compile import CompiledModel, compile_model
from repro.core.session import RunResult, Session
from repro.perf.kernel_cost import Orchestration
from repro.coe.api import (
    ServeConfig,
    ServeModeError,
    Server,
    build_server,
    serve,
)
from repro.coe.policies import ClusterPolicy, NodePolicy, ServeMode

__version__ = "1.0.0"

__all__ = [
    "CompiledModel",
    "compile_model",
    "Session",
    "RunResult",
    "Orchestration",
    "ServeConfig",
    "ServeMode",
    "ServeModeError",
    "Server",
    "ClusterPolicy",
    "NodePolicy",
    "build_server",
    "serve",
    "__version__",
]
