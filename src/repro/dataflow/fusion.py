"""Operator fusion: unfused, conventional (GPU-style), and streaming dataflow.

The paper's central software claim (Section III-A): conventional operator
fusion is limited to short chains with friendly access patterns, while the
SN40L's streaming dataflow fuses *hundreds* of operators — including
transposes and shuffles — into a single spatially-mapped kernel.

Three policies are implemented against the same :class:`DataflowGraph`:

- :func:`unfused` — every operator is its own kernel (the paper's baseline
  configuration: "every PyTorch operator ... executed as one or more
  kernels, with intermediate results materialized to DDR or HBM"),
- :func:`conventional_fusion` — a GPU-style greedy fuser: at most one
  GEMM per kernel, elementwise epilogues fused, regions broken at
  transpose/shuffle/gather edges, at multi-consumer intermediates, and at
  a small op-count cap (frameworks fuse 1-5 ops; paper Section VIII-3),
- :func:`streaming_fusion` — the SN40L fuser: regions grow until they
  exhaust the on-chip PCU/PMU budget; data-movement ops (transpose,
  shuffle) are absorbed into PMU access patterns and consume no compute.

All policies partition a topological order into contiguous segments, so the
resulting kernel sequence is always a valid schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dataflow.graph import (
    DataflowGraph,
    Operator,
    OpKind,
    TensorSpec,
)


@dataclass
class Kernel:
    """A fused kernel: a set of operators launched as one unit.

    Boundary analysis is performed against the owning graph: tensors
    produced outside (or never produced — weights, graph inputs) are
    *external inputs*; tensors consumed outside (or never consumed — graph
    outputs) are *external outputs*; everything else is *internal* and, in
    a streaming-dataflow mapping, never leaves the chip.
    """

    name: str
    ops: List[Operator]
    external_inputs: List[TensorSpec] = field(default_factory=list)
    external_outputs: List[TensorSpec] = field(default_factory=list)
    internal_tensors: List[TensorSpec] = field(default_factory=list)

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    @property
    def flops(self) -> float:
        return sum(op.flops for op in self.ops)

    @property
    def comm_bytes(self) -> float:
        return sum(op.comm_bytes for op in self.ops)

    @property
    def external_input_bytes(self) -> int:
        return sum(t.size_bytes for t in self.external_inputs)

    @property
    def external_output_bytes(self) -> int:
        return sum(t.size_bytes for t in self.external_outputs)

    @property
    def weight_bytes(self) -> int:
        return sum(t.size_bytes for t in self.external_inputs if t.is_weight)

    @property
    def offchip_bytes(self) -> int:
        """Minimum off-chip traffic: boundary tensors, counted once.

        Tiling re-reads for working sets that exceed on-chip capacity are
        layered on top by :mod:`repro.dataflow.intensity`.
        """
        return self.external_input_bytes + self.external_output_bytes

    @property
    def internal_bytes(self) -> int:
        """Bytes of intermediates kept on-chip by this fusion."""
        return sum(t.size_bytes for t in self.internal_tensors)

    @property
    def operational_intensity(self) -> float:
        """FLOPs per byte of minimal off-chip traffic."""
        traffic = self.offchip_bytes
        return self.flops / traffic if traffic > 0 else float("inf")

    @property
    def compute_stages(self) -> int:
        """Pipeline stages that occupy PCUs (data-movement ops are free:
        they fuse into PMU access patterns on the SN40L)."""
        return sum(1 for op in self.ops if not op.kind.is_data_movement)


@dataclass
class FusionPlan:
    """The result of applying one fusion policy to one graph."""

    graph: DataflowGraph
    kernels: List[Kernel]
    policy: str

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def total_flops(self) -> float:
        return sum(k.flops for k in self.kernels)

    @property
    def total_offchip_bytes(self) -> int:
        return sum(k.offchip_bytes for k in self.kernels)

    @property
    def operational_intensity(self) -> float:
        traffic = self.total_offchip_bytes
        return self.total_flops / traffic if traffic > 0 else float("inf")

    def validate(self) -> None:
        """Every graph op appears in exactly one kernel."""
        seen: Set[str] = set()
        for kernel in self.kernels:
            for op in kernel.ops:
                if op.name in seen:
                    raise AssertionError(f"op {op.name!r} in multiple kernels")
                seen.add(op.name)
        graph_ops = {op.name for op in self.graph.operators}
        if seen != graph_ops:
            missing = graph_ops - seen
            raise AssertionError(f"ops missing from plan: {sorted(missing)}")

    def summary(self) -> str:
        return (
            f"{self.policy}: {self.num_kernels} kernels, "
            f"intensity {self.operational_intensity:.1f} FLOPs/byte"
        )


def _build_kernel(name: str, ops: Sequence[Operator], graph: DataflowGraph) -> Kernel:
    """Compute boundary tensors for a candidate op set."""
    member_names = {op.name for op in ops}
    produced: Dict[str, TensorSpec] = {}
    for op in ops:
        for t in op.outputs:
            produced[t.name] = t

    ext_inputs: Dict[str, TensorSpec] = {}
    for op in ops:
        for t in op.inputs:
            if t.name not in produced and t.name not in ext_inputs:
                ext_inputs[t.name] = t

    ext_outputs: List[TensorSpec] = []
    internal: List[TensorSpec] = []
    for tname, t in produced.items():
        consumers = graph.consumers_of(tname)
        escapes = not consumers or any(c.name not in member_names for c in consumers)
        if escapes:
            ext_outputs.append(t)
        else:
            internal.append(t)

    return Kernel(
        name=name,
        ops=list(ops),
        external_inputs=list(ext_inputs.values()),
        external_outputs=ext_outputs,
        internal_tensors=internal,
    )


def unfused(graph: DataflowGraph) -> FusionPlan:
    """One kernel per operator — the paper's unfused baseline."""
    kernels = [
        _build_kernel(f"k{idx}_{op.name}", [op], graph)
        for idx, op in enumerate(graph.topological_order())
    ]
    plan = FusionPlan(graph=graph, kernels=kernels, policy="unfused")
    plan.validate()
    return plan


def conventional_fusion(graph: DataflowGraph, max_ops: int = 5) -> FusionPlan:
    """GPU-style fusion with documented framework restrictions.

    Break conditions, following paper Section III-A:

    1. edge access pattern is transpose/shuffle/gather (cross-SM exchange),
    2. the region already contains a GEMM and the next op is another GEMM
       (no multi-GEMM mega-kernels in PyTorch2/TensorRT-class fusers),
    3. the producing tensor has multiple consumers (must materialise),
    4. the region has reached ``max_ops`` operators,
    5. the next op is a collective (ALLREDUCE) or gather-heavy op.
    """
    order = graph.topological_order()
    kernels: List[Kernel] = []
    region: List[Operator] = []

    def close_region() -> None:
        if region:
            kernels.append(_build_kernel(f"k{len(kernels)}", list(region), graph))
            region.clear()

    for op in order:
        if not region:
            region.append(op)
            continue
        if _conventional_break(region, op, graph, max_ops):
            close_region()
        region.append(op)
    close_region()

    plan = FusionPlan(graph=graph, kernels=kernels, policy="conventional")
    plan.validate()
    return plan


def _conventional_break(
    region: List[Operator], op: Operator, graph: DataflowGraph, max_ops: int
) -> bool:
    if len(region) >= max_ops:
        return True
    if op.kind in (OpKind.ALLREDUCE, OpKind.EMBEDDING):
        return True
    member_names = {r.name for r in region}
    region_has_gemm = any(r.kind.is_compute_heavy for r in region)
    if region_has_gemm and op.kind.is_compute_heavy:
        return True
    # A transpose/shuffle in the region has already forced a cross-SM data
    # exchange; its output materialises, so nothing further can fuse in.
    if any(r.kind.is_data_movement and r.kind != OpKind.RESHAPE for r in region):
        return True
    # Examine the edges from the region into this op.
    feeds_from_region = False
    for t in op.inputs:
        producer = graph.producer_of(t.name)
        if producer is None or producer.name not in member_names:
            continue
        feeds_from_region = True
        if not op.pattern_of(t.name).gpu_fusable:
            return True
        if len(graph.consumers_of(t.name)) > 1:
            return True
    # An op with no dataflow from the current region starts a new kernel:
    # GPUs cannot co-schedule independent operators in one launch the way a
    # spatial pipeline can.
    if not feeds_from_region:
        return True
    return False


def streaming_fusion(
    graph: DataflowGraph,
    pcu_budget: int = 1040,
    pmu_budget_bytes: Optional[int] = None,
    stage_buffer_bytes: int = 2 * 64 * 1024,
) -> FusionPlan:
    """SN40L streaming-dataflow fusion.

    Regions grow along the topological order and only close when on-chip
    resources run out:

    - each non-data-movement op needs at least one PCU (``pcu_budget``),
    - each internal tensor needs a double-buffered stage buffer; a stage
      buffer holds *tiles* of the tensor, not the whole tensor, so its PMU
      demand is ``min(tensor_bytes, stage_buffer_bytes)`` (tensors are tiled
      and streamed — paper Section III-A),
    - collectives do *not* break fusion: the P2P protocol lets the compiler
      fuse and pipeline collective communication with compute into the same
      kernel (paper Section VII).

    Transposes and shuffles are absorbed as PMU access patterns; they cost
    a stage buffer but no PCU.
    """
    if pmu_budget_bytes is None:
        # Default: one socket's worth of PMU SRAM.
        pmu_budget_bytes = 1040 * 512 * 1024

    order = graph.topological_order()
    kernels: List[Kernel] = []
    region: List[Operator] = []
    region_pcus = 0
    region_pmu_bytes = 0

    def close_region() -> None:
        nonlocal region_pcus, region_pmu_bytes
        if region:
            kernels.append(_build_kernel(f"k{len(kernels)}", list(region), graph))
            region.clear()
        region_pcus = 0
        region_pmu_bytes = 0

    for op in order:
        if op.kind.is_data_movement:
            pcu_need = 0  # folds into PMU access patterns
        elif op.kind.is_compute_heavy:
            # A GEMM stage is parallelized across PCUs to match pipeline
            # bandwidth (Figure 4 assigns Gemm0/Gemm1 multiple PCUs).
            pcu_need = 32
        else:
            pcu_need = 2
        pmu_need = sum(
            min(t.size_bytes, stage_buffer_bytes) * 2 for t in op.outputs
        )
        if region and (
            region_pcus + pcu_need > pcu_budget
            or region_pmu_bytes + pmu_need > pmu_budget_bytes
        ):
            close_region()
        region.append(op)
        region_pcus += pcu_need
        region_pmu_bytes += pmu_need
    close_region()

    plan = FusionPlan(graph=graph, kernels=kernels, policy="streaming")
    plan.validate()
    return plan


def group_by_prefix(
    graph: DataflowGraph,
    key=lambda op: op.name.split(".")[0],
    policy: str = "streaming",
) -> FusionPlan:
    """Hint-driven fusion: one kernel per op-name prefix group.

    The paper fuses "the entire decoder layer ... into a single kernel
    call" using "a combination of automatic compiler optimizations and
    programmer hints" (Sections VI-A, VI-B). Model builders name operators
    ``l<k>.<op>``, so the default key groups by decoder layer; embedding,
    final norm, and LM head land in their own (small) kernels.

    Groups follow the topological order, merging consecutive ops with the
    same key, so the kernel sequence remains a valid schedule even when a
    prefix reappears later (it simply opens a new kernel).
    """
    order = graph.topological_order()
    kernels: List[Kernel] = []
    region: List[Operator] = []
    region_key = None
    for op in order:
        op_key = key(op)
        if region and op_key != region_key:
            kernels.append(_build_kernel(f"k{len(kernels)}_{region_key}", list(region), graph))
            region = []
        region.append(op)
        region_key = op_key
    if region:
        kernels.append(_build_kernel(f"k{len(kernels)}_{region_key}", list(region), graph))
    plan = FusionPlan(graph=graph, kernels=kernels, policy=policy)
    plan.validate()
    return plan


def manual_plan(
    graph: DataflowGraph, groups: Sequence[Sequence[str]], policy: str = "manual"
) -> FusionPlan:
    """Build a fusion plan from explicit op-name groups.

    Used by analyses that study *hypothetical* fusion levels, like the
    paper's Table I row "Gemm0 - Mul - Transpose", independent of what any
    policy would choose. Groups must partition the graph's operators.
    """
    kernels = []
    for idx, group in enumerate(groups):
        ops = [graph[name] for name in group]
        kernels.append(_build_kernel(f"k{idx}", ops, graph))
    plan = FusionPlan(graph=graph, kernels=kernels, policy=policy)
    plan.validate()
    return plan


def kernel_call_ratio(graph: DataflowGraph, fused: FusionPlan) -> float:
    """Unfused-to-fused kernel count ratio (paper Figure 11)."""
    if fused.num_kernels == 0:
        raise ValueError("fused plan has no kernels")
    return len(graph) / fused.num_kernels
