"""Rendering dataflow graphs and fusion plans (DOT and text).

`to_dot` emits Graphviz for papers/debugging; `plan_summary` renders a
fusion plan the way Figure 4 describes one — stages, stage buffers, and
which tensors were fused into access patterns.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dataflow.fusion import FusionPlan
from repro.dataflow.graph import DataflowGraph, OpKind
from repro.units import fmt_bytes

_KIND_SHAPES = {
    OpKind.GEMM: "box",
    OpKind.CONV: "box",
    OpKind.ELEMENTWISE: "ellipse",
    OpKind.SOFTMAX: "ellipse",
    OpKind.NORM: "ellipse",
    OpKind.ROPE: "ellipse",
    OpKind.REDUCTION: "ellipse",
    OpKind.SAMPLE: "ellipse",
    OpKind.TRANSPOSE: "diamond",
    OpKind.RESHAPE: "diamond",
    OpKind.FFT_PERMUTE: "diamond",
    OpKind.EMBEDDING: "house",
    OpKind.KV_APPEND: "cylinder",
    OpKind.ALLREDUCE: "doubleoctagon",
}


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def to_dot(
    graph: DataflowGraph,
    plan: Optional[FusionPlan] = None,
    max_ops: int = 400,
) -> str:
    """Graphviz DOT for a graph; with ``plan``, kernels become clusters.

    ``max_ops`` guards against accidentally dotting a 70B model; pass a
    larger value explicitly if you really want to.
    """
    if len(graph) > max_ops:
        raise ValueError(
            f"{graph.name} has {len(graph)} ops (> {max_ops}); "
            f"raise max_ops to render anyway"
        )
    lines: List[str] = [f"digraph {_quote(graph.name)} {{", "  rankdir=LR;"]

    def node_line(op, indent: str = "  ") -> str:
        shape = _KIND_SHAPES.get(op.kind, "ellipse")
        label = f"{op.name}\\n{op.kind.value}"
        return f"{indent}{_quote(op.name)} [shape={shape}, label={_quote(label)}];"

    if plan is not None:
        for idx, kernel in enumerate(plan.kernels):
            lines.append(f"  subgraph cluster_{idx} {{")
            lines.append(f"    label={_quote(kernel.name)};")
            for op in kernel.ops:
                lines.append(node_line(op, indent="    "))
            lines.append("  }")
    else:
        for op in graph.operators:
            lines.append(node_line(op))

    for op in graph.operators:
        for tensor in op.inputs:
            producer = graph.producer_of(tensor.name)
            if producer is None:
                continue
            label = f"{tensor.name} ({fmt_bytes(tensor.size_bytes)})"
            lines.append(
                f"  {_quote(producer.name)} -> {_quote(op.name)} "
                f"[label={_quote(label)}];"
            )
    lines.append("}")
    return "\n".join(lines)


def plan_summary(plan: FusionPlan, max_kernels: int = 50) -> str:
    """Text rendering of a fusion plan: one block per kernel.

    Shows each kernel's operators, the stage buffers its internal tensors
    need, and the boundary traffic — the Figure 4 story in text.
    """
    lines: List[str] = [
        f"plan[{plan.policy}] for {plan.graph.name}: "
        f"{plan.num_kernels} kernels, "
        f"intensity {plan.operational_intensity:.1f} FLOPs/byte",
    ]
    for kernel in plan.kernels[:max_kernels]:
        compute = [op.name for op in kernel.ops if not op.kind.is_data_movement]
        folded = [op.name for op in kernel.ops if op.kind.is_data_movement]
        lines.append(
            f"  {kernel.name}: {kernel.num_ops} ops, "
            f"{kernel.flops / 1e9:.2f} GFLOPs, "
            f"io {fmt_bytes(kernel.offchip_bytes)}"
        )
        lines.append(f"    stages : {' -> '.join(compute) if compute else '(none)'}")
        if folded:
            lines.append(f"    folded : {', '.join(folded)} (PMU access patterns)")
        if kernel.internal_tensors:
            buffers = ", ".join(
                f"{t.name}[{fmt_bytes(t.size_bytes)}]"
                for t in kernel.internal_tensors
            )
            lines.append(f"    buffers: {buffers}")
    hidden = plan.num_kernels - max_kernels
    if hidden > 0:
        lines.append(f"  ... {hidden} more kernels")
    return "\n".join(lines)
