"""Dataflow graphs, fusion, intensity, placement, and pipelines."""

from repro.dataflow.autofusion import optimal_fusion, plan_time
from repro.dataflow.bandwidth import (
    BandwidthReport,
    Channel,
    Stream,
    analyze_kernel_bandwidth,
    channel_capacities,
    throttle_recommendations,
)
from repro.dataflow.fusion import (
    FusionPlan,
    Kernel,
    conventional_fusion,
    group_by_prefix,
    kernel_call_ratio,
    manual_plan,
    streaming_fusion,
    unfused,
)
from repro.dataflow.graph import (
    AccessPattern,
    DataflowGraph,
    DType,
    GraphError,
    Operator,
    OpKind,
    TensorSpec,
)
from repro.dataflow.intensity import (
    GPU_FUSED,
    GPU_UNFUSED,
    SN40L_STREAMING,
    TrafficModel,
    operational_intensity,
    plan_traffic_bytes,
)
from repro.dataflow.placement import (
    DieSplit,
    KernelPlacement,
    PlacementError,
    place_kernel,
    split_across_dies,
)
from repro.dataflow.visualize import plan_summary, to_dot
from repro.dataflow.pipeline import PipelineEstimate, analyze_pipeline, simulate

__all__ = [
    "optimal_fusion", "plan_time",
    "BandwidthReport", "Channel", "Stream", "analyze_kernel_bandwidth",
    "channel_capacities", "throttle_recommendations",
    "FusionPlan", "Kernel", "conventional_fusion", "group_by_prefix",
    "kernel_call_ratio", "manual_plan", "streaming_fusion", "unfused",
    "AccessPattern", "DataflowGraph", "DType", "GraphError", "Operator",
    "OpKind", "TensorSpec", "GPU_FUSED", "GPU_UNFUSED", "SN40L_STREAMING",
    "TrafficModel", "operational_intensity", "plan_traffic_bytes",
    "KernelPlacement", "PlacementError", "place_kernel", "DieSplit",
    "split_across_dies",
    "PipelineEstimate", "analyze_pipeline", "simulate", "plan_summary",
    "to_dot",
]
