"""Dataflow graphs: operators connected by named tensors.

This is the compiler's input representation (paper Figure 3 shows one such
graph, a simplified Monarch FFT stage). Nodes are :class:`Operator` objects
carrying exact FLOP counts; edges are :class:`TensorSpec` objects carrying
exact byte sizes. Every downstream analysis — operational intensity,
fusion, placement, the kernel cost model — is computed from these counts,
never estimated.

The graph is deliberately framework-free: model builders in
:mod:`repro.models` construct these graphs directly from architecture
hyperparameters (hidden size, heads, layers, ...).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class DType(enum.Enum):
    """Element types with their byte widths."""

    BF16 = 2
    FP32 = 4
    INT32 = 4
    INT8 = 1

    @property
    def size_bytes(self) -> int:
        return self.value


@dataclass(frozen=True)
class TensorSpec:
    """One named tensor (a graph edge)."""

    name: str
    shape: Tuple[int, ...]
    dtype: DType = DType.BF16
    #: Weights are read-only parameters; they get HBM priority when spilling
    #: and are skipped on copy-back when a CoE expert is evicted.
    is_weight: bool = False

    def __post_init__(self) -> None:
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"{self.name}: non-positive dim in shape {self.shape}")

    @property
    def num_elements(self) -> int:
        return math.prod(self.shape)

    @property
    def size_bytes(self) -> int:
        return self.num_elements * self.dtype.size_bytes


class AccessPattern(enum.Enum):
    """How an operator reads one of its inputs.

    The distinction that matters for fusion (paper Section III-A): GPUs can
    fuse producer/consumer pairs only when the consumer reads the producer's
    output without crossing thread blocks. ``TRANSPOSE``, ``SHUFFLE``, and
    ``GATHER`` all force cross-SM data exchange through the shared cache and
    HBM, breaking the fusion region. The SN40L fuses them as PMU read/write
    access patterns instead.
    """

    CONTIGUOUS = "contiguous"
    STRIDED = "strided"
    BROADCAST = "broadcast"
    TRANSPOSE = "transpose"
    SHUFFLE = "shuffle"
    GATHER = "gather"

    @property
    def gpu_fusable(self) -> bool:
        """Whether GPU-style fusion can cross this edge."""
        return self in (AccessPattern.CONTIGUOUS, AccessPattern.BROADCAST)


class OpKind(enum.Enum):
    """Operator categories, used by fusion policies and the placer."""

    GEMM = "gemm"
    ELEMENTWISE = "elementwise"
    REDUCTION = "reduction"
    SOFTMAX = "softmax"
    NORM = "norm"
    TRANSPOSE = "transpose"
    RESHAPE = "reshape"
    ROPE = "rope"
    EMBEDDING = "embedding"
    SAMPLE = "sample"
    FFT_PERMUTE = "fft_permute"
    ALLREDUCE = "allreduce"
    KV_APPEND = "kv_append"
    CONV = "conv"

    @property
    def is_compute_heavy(self) -> bool:
        """Operators that use the PCU systolic array (GEMM-like work)."""
        return self in (OpKind.GEMM, OpKind.CONV)

    @property
    def is_data_movement(self) -> bool:
        """Pure layout transforms: zero FLOPs, fusable into PMU patterns."""
        return self in (OpKind.TRANSPOSE, OpKind.RESHAPE, OpKind.FFT_PERMUTE)


@dataclass(frozen=True)
class Operator:
    """One graph node.

    ``flops`` is the exact floating-point work of the operator. Access
    patterns are given per input, aligned with ``inputs``; unspecified
    inputs default to ``CONTIGUOUS``.
    """

    name: str
    kind: OpKind
    inputs: Tuple[TensorSpec, ...]
    outputs: Tuple[TensorSpec, ...]
    flops: float
    input_patterns: Tuple[AccessPattern, ...] = ()
    #: Bytes exchanged over the interconnect for communication operators
    #: (ALLREDUCE); zero for compute operators.
    comm_bytes: float = 0.0
    #: For GEMM-like ops, the ``(M, K, N)`` problem dims with batch folded
    #: into M. Drives the tiled-traffic model in
    #: :mod:`repro.dataflow.intensity`.
    gemm_dims: Optional[Tuple[int, int, int]] = None

    def __post_init__(self) -> None:
        if self.flops < 0:
            raise ValueError(f"{self.name}: negative flops {self.flops}")
        if not self.outputs:
            raise ValueError(f"{self.name}: an operator must produce output")
        if self.input_patterns and len(self.input_patterns) != len(self.inputs):
            raise ValueError(
                f"{self.name}: {len(self.input_patterns)} patterns for "
                f"{len(self.inputs)} inputs"
            )

    def pattern_of(self, tensor_name: str) -> AccessPattern:
        """Access pattern with which this op reads ``tensor_name``."""
        for idx, tensor in enumerate(self.inputs):
            if tensor.name == tensor_name:
                if self.input_patterns:
                    return self.input_patterns[idx]
                return AccessPattern.CONTIGUOUS
        raise KeyError(f"{self.name} has no input {tensor_name!r}")

    @property
    def input_bytes(self) -> int:
        return sum(t.size_bytes for t in self.inputs)

    @property
    def output_bytes(self) -> int:
        return sum(t.size_bytes for t in self.outputs)

    @property
    def weight_bytes(self) -> int:
        return sum(t.size_bytes for t in self.inputs if t.is_weight)


class GraphError(Exception):
    """Raised for malformed graphs (duplicate producers, cycles, ...)."""


class DataflowGraph:
    """A directed acyclic graph of operators connected by tensor names.

    Tensors are identified by name: an edge exists from op A to op B when B
    consumes a tensor that A produces. Tensors consumed but never produced
    are graph inputs (activations entering the graph, or weights); tensors
    produced but never consumed are graph outputs.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._ops: Dict[str, Operator] = {}
        self._producer: Dict[str, str] = {}
        # Lazily built tensor-name -> consumer-op-names index; invalidated
        # on every add() so heavy analyses (fusion DP) stay O(edges).
        self._consumer_index: Optional[Dict[str, List[str]]] = None

    def add(self, op: Operator) -> Operator:
        """Insert an operator; rejects duplicate op names and producers."""
        if op.name in self._ops:
            raise GraphError(f"duplicate operator name: {op.name!r}")
        for tensor in op.outputs:
            if tensor.name in self._producer:
                raise GraphError(
                    f"tensor {tensor.name!r} already produced by "
                    f"{self._producer[tensor.name]!r}"
                )
        self._ops[op.name] = op
        for tensor in op.outputs:
            self._producer[tensor.name] = op.name
        self._consumer_index = None
        return op

    def __len__(self) -> int:
        return len(self._ops)

    def __contains__(self, op_name: str) -> bool:
        return op_name in self._ops

    def __getitem__(self, op_name: str) -> Operator:
        return self._ops[op_name]

    @property
    def operators(self) -> List[Operator]:
        return list(self._ops.values())

    def producer_of(self, tensor_name: str) -> Optional[Operator]:
        """The operator producing ``tensor_name``, or None for graph inputs."""
        op_name = self._producer.get(tensor_name)
        return self._ops[op_name] if op_name is not None else None

    def consumers_of(self, tensor_name: str) -> List[Operator]:
        """All operators that read ``tensor_name``."""
        if self._consumer_index is None:
            index: Dict[str, List[str]] = {}
            for op in self._ops.values():
                for t in op.inputs:
                    index.setdefault(t.name, []).append(op.name)
            self._consumer_index = index
        return [self._ops[name] for name in self._consumer_index.get(tensor_name, [])]

    def predecessors(self, op: Operator) -> List[Operator]:
        preds = []
        for tensor in op.inputs:
            producer = self.producer_of(tensor.name)
            if producer is not None:
                preds.append(producer)
        return preds

    def successors(self, op: Operator) -> List[Operator]:
        succs: List[Operator] = []
        seen = set()
        for tensor in op.outputs:
            for consumer in self.consumers_of(tensor.name):
                if consumer.name not in seen:
                    seen.add(consumer.name)
                    succs.append(consumer)
        return succs

    def external_inputs(self) -> List[TensorSpec]:
        """Tensors read by some op but produced by none (incl. weights)."""
        seen: Dict[str, TensorSpec] = {}
        for op in self._ops.values():
            for tensor in op.inputs:
                if tensor.name not in self._producer and tensor.name not in seen:
                    seen[tensor.name] = tensor
        return list(seen.values())

    def external_outputs(self) -> List[TensorSpec]:
        """Tensors produced by some op but consumed by none."""
        consumed = {
            t.name for op in self._ops.values() for t in op.inputs
        }
        outs = []
        for op in self._ops.values():
            for tensor in op.outputs:
                if tensor.name not in consumed:
                    outs.append(tensor)
        return outs

    def topological_order(self) -> List[Operator]:
        """Operators in dependency order; raises GraphError on cycles."""
        in_degree: Dict[str, int] = {}
        for op in self._ops.values():
            in_degree[op.name] = sum(
                1
                for tensor in op.inputs
                if tensor.name in self._producer
            )
        # Stable: prefer insertion order among ready nodes.
        ready = [name for name, deg in in_degree.items() if deg == 0]
        order: List[Operator] = []
        while ready:
            name = ready.pop(0)
            op = self._ops[name]
            order.append(op)
            for succ in self.successors(op):
                in_degree[succ.name] -= len(
                    [
                        t
                        for t in succ.inputs
                        if self._producer.get(t.name) == op.name
                    ]
                )
                if in_degree[succ.name] == 0:
                    ready.append(succ.name)
        if len(order) != len(self._ops):
            raise GraphError(f"cycle detected in graph {self.name!r}")
        return order

    @property
    def total_flops(self) -> float:
        return sum(op.flops for op in self._ops.values())

    @property
    def weight_bytes(self) -> int:
        """Bytes of all distinct weight tensors in the graph."""
        seen: Dict[str, int] = {}
        for op in self._ops.values():
            for tensor in op.inputs:
                if tensor.is_weight:
                    seen[tensor.name] = tensor.size_bytes
        return sum(seen.values())

    def summary(self) -> str:
        """One-line human-readable description."""
        return (
            f"{self.name}: {len(self)} ops, {self.total_flops / 1e9:.2f} GFLOPs, "
            f"{self.weight_bytes / 2**20:.1f} MiB weights"
        )
