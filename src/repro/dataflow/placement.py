"""Spatial placement: mapping a fused kernel onto PCUs and PMUs.

This reproduces the mapping decisions visible in the paper's Figure 4:

- compute units are apportioned to stages *in proportion to their share of
  the kernel's work* ("More compute units are assigned to Gemm0 and Gemm1
  as they account for a larger fraction of the total operations"),
- logical stage buffers are partitioned across multiple PMUs for
  *bandwidth* (to match the consuming stage's input rate) and for
  *capacity* (buffers bigger than one PMU, like S0-S3),
- data-movement operators (transpose/shuffle) consume no PCUs — they fold
  into the stage buffer's read/write access patterns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.config import PCUConfig, PMUConfig, SocketConfig
from repro.dataflow.fusion import Kernel
from repro.dataflow.graph import Operator, TensorSpec


class PlacementError(Exception):
    """Raised when a kernel does not fit on the target's resources."""


@dataclass(frozen=True)
class StagePlacement:
    """Resources assigned to one pipeline stage (one operator)."""

    op_name: str
    pcus: int
    #: Peak FLOP/s this stage can sustain with its PCU allocation.
    stage_flops: float


@dataclass(frozen=True)
class BufferPlacement:
    """PMUs backing one stage buffer (one internal tensor)."""

    tensor_name: str
    pmus_for_capacity: int
    pmus_for_bandwidth: int

    @property
    def pmus(self) -> int:
        """PMUs actually allocated: the max of both requirements.

        This is the Figure 4 rule: I0 is split for bandwidth, S0-S3 for
        capacity, T00-T03 for both.
        """
        return max(self.pmus_for_capacity, self.pmus_for_bandwidth, 1)


@dataclass(frozen=True)
class DieSplit:
    """How a kernel's stages divide across a socket's two dies.

    The SN40L is a two-die package whose tiles stream directly over the
    D2D interface (paper Section IV). A pipeline split across dies pays
    D2D bandwidth on every tensor crossing the cut; the split below is
    the contiguous-prefix cut that best balances PCU load (contiguous in
    pipeline order, so exactly one crossing region).
    """

    die0_stages: Tuple[str, ...]
    die1_stages: Tuple[str, ...]
    #: Names of tensors streaming across the die boundary.
    crossing_tensors: Tuple[str, ...]
    crossing_bytes: int

    def d2d_time(self, d2d_bandwidth: float) -> float:
        """Time to move the crossing traffic once at D2D bandwidth."""
        if d2d_bandwidth <= 0:
            raise ValueError(f"bad D2D bandwidth {d2d_bandwidth}")
        return self.crossing_bytes / d2d_bandwidth


@dataclass
class KernelPlacement:
    """The full spatial mapping of one fused kernel."""

    kernel_name: str
    stages: List[StagePlacement] = field(default_factory=list)
    buffers: List[BufferPlacement] = field(default_factory=list)

    @property
    def total_pcus(self) -> int:
        return sum(s.pcus for s in self.stages)

    @property
    def total_pmus(self) -> int:
        return sum(b.pmus for b in self.buffers)

    def stage(self, op_name: str) -> StagePlacement:
        for stage in self.stages:
            if stage.op_name == op_name:
                return stage
        raise KeyError(f"no stage for op {op_name!r}")


def place_kernel(
    kernel: Kernel,
    socket: SocketConfig = SocketConfig(),
    sockets: int = 1,
    stage_buffer_tile_bytes: int = 128 * 1024,
    target_utilization: float = 0.9,
) -> KernelPlacement:
    """Place one fused kernel onto ``sockets`` sockets' worth of resources.

    PCUs go to compute stages proportionally to FLOPs (minimum one per
    stage); PMUs back each internal tensor's stage buffer, double-buffered
    tiles of ``stage_buffer_tile_bytes``. Raises :class:`PlacementError`
    when the kernel needs more units than the target has — the signal the
    fusion policy uses to bound region growth.

    ``target_utilization`` reserves headroom, reflecting the paper's
    observed ~90% PCU/PMU occupancy for the fused decoder.
    """
    if sockets < 1:
        raise ValueError(f"sockets must be >= 1, got {sockets}")
    if not 0.0 < target_utilization <= 1.0:
        raise ValueError(f"target_utilization must be in (0, 1], got {target_utilization}")

    pcu_budget = int(socket.num_pcus * sockets * target_utilization)
    pmu_budget = int(socket.num_pmus * sockets * target_utilization)

    compute_ops = [op for op in kernel.ops if not op.kind.is_data_movement]
    total_flops = sum(op.flops for op in compute_ops)

    stages: List[StagePlacement] = []
    if compute_ops:
        if len(compute_ops) > pcu_budget:
            raise PlacementError(
                f"{kernel.name}: {len(compute_ops)} compute stages exceed "
                f"{pcu_budget} PCUs"
            )
        remaining = pcu_budget - len(compute_ops)
        for op in compute_ops:
            share = op.flops / total_flops if total_flops > 0 else 0.0
            extra = int(remaining * share)
            pcus = 1 + extra
            stages.append(
                StagePlacement(
                    op_name=op.name,
                    pcus=pcus,
                    stage_flops=pcus * socket.tile.pcu.peak_flops,
                )
            )
    if sum(s.pcus for s in stages) > pcu_budget:
        # Proportional rounding can only under-allocate; guard regardless.
        raise PlacementError(f"{kernel.name}: PCU over-allocation bug")

    pmu_cfg = socket.tile.pmu
    buffers: List[BufferPlacement] = []
    for tensor in kernel.internal_tensors:
        buffers.append(_place_buffer(tensor, kernel, pmu_cfg, stage_buffer_tile_bytes))
    total_pmus = sum(b.pmus for b in buffers)
    if total_pmus > pmu_budget:
        raise PlacementError(
            f"{kernel.name}: stage buffers need {total_pmus} PMUs, "
            f"budget {pmu_budget}"
        )

    return KernelPlacement(kernel_name=kernel.name, stages=stages, buffers=buffers)


def _place_buffer(
    tensor: TensorSpec,
    kernel: Kernel,
    pmu: PMUConfig,
    tile_bytes: int,
) -> BufferPlacement:
    """Size one stage buffer for capacity and bandwidth.

    Capacity: double-buffered tiles (or the whole tensor if smaller).
    Bandwidth: the buffer must source the consuming stage's aggregate read
    rate; each PMU adds one read port of ``pmu.read_bandwidth``.
    """
    resident = min(tensor.size_bytes, tile_bytes) * 2
    for_capacity = math.ceil(resident / pmu.capacity_bytes)

    consumers = [
        op
        for op in kernel.ops
        if any(t.name == tensor.name for t in op.inputs)
    ]
    # Demand heuristic: a systolic consumer drains one vector per cycle per
    # PCU; approximate stage read demand as one PMU port per 4 consuming
    # PCUs (operand reuse inside the systolic array reduces port pressure).
    demand_ports = 0
    for op in consumers:
        if op.kind.is_compute_heavy:
            demand_ports += 2
        else:
            demand_ports += 1
    return BufferPlacement(
        tensor_name=tensor.name,
        pmus_for_capacity=max(1, for_capacity),
        pmus_for_bandwidth=max(1, demand_ports),
    )


def split_across_dies(kernel: Kernel, placement: KernelPlacement) -> DieSplit:
    """Choose the balanced contiguous cut of the pipeline across two dies.

    Stages stay in pipeline order; the cut point minimises the PCU-count
    imbalance between dies. Tensors produced on die 0 and consumed on
    die 1 (or vice versa) stream over the D2D interface.
    """
    stages = placement.stages
    if not stages:
        raise ValueError(f"{kernel.name}: no stages to split")
    total_pcus = sum(s.pcus for s in stages)
    best_cut, best_imbalance = 0, float("inf")
    running = 0
    for cut in range(len(stages) + 1):
        if cut > 0:
            running += stages[cut - 1].pcus
        imbalance = abs(running - (total_pcus - running))
        if imbalance < best_imbalance:
            best_imbalance = imbalance
            best_cut = cut

    die0 = {s.op_name for s in stages[:best_cut]}
    die1 = {s.op_name for s in stages[best_cut:]}
    # Data-movement ops fold into the die of their producer stage.
    op_die = {}
    for op in kernel.ops:
        if op.name in die0:
            op_die[op.name] = 0
        elif op.name in die1:
            op_die[op.name] = 1
    producer_of = {t.name: op for op in kernel.ops for t in op.outputs}
    for op in kernel.ops:
        if op.name in op_die:
            continue
        sources = [
            op_die.get(producer_of[t.name].name)
            for t in op.inputs
            if t.name in producer_of and producer_of[t.name].name in op_die
        ]
        op_die[op.name] = sources[0] if sources and sources[0] is not None else 0

    crossing = []
    crossing_bytes = 0
    for op in kernel.ops:
        for t in op.inputs:
            producer = producer_of.get(t.name)
            if producer is None:
                continue
            if op_die[producer.name] != op_die[op.name] and t.name not in crossing:
                crossing.append(t.name)
                crossing_bytes += t.size_bytes
    return DieSplit(
        die0_stages=tuple(s.op_name for s in stages[:best_cut]),
        die1_stages=tuple(s.op_name for s in stages[best_cut:]),
        crossing_tensors=tuple(crossing),
        crossing_bytes=crossing_bytes,
    )
