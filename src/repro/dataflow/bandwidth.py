"""The compiler's static bandwidth model (paper Section VII).

"Software must manage bandwidth from various entities: tile-level unit
communication, HBM, DDR, die-to-die, peer-to-peer, and host bandwidth...
Building a static bandwidth model in the compiler to model both
application requirements and hardware characteristics was essential to
enable proper bandwidth allocation and traffic management."

This module reproduces that model. A fused kernel's pipeline implies a set
of *streams* — per-tensor data flows with a sustained byte rate derived
from the pipeline's bottleneck rate. Each stream is assigned to a hardware
*channel* (HBM, DDR, D2D, P2P, TLN); the model reports per-channel
subscription, flags over-subscription, and computes the slowdown the
kernel suffers when a channel is oversubscribed — the first-order static
tuning the paper describes ("applications can be analyzed and tuned for
performance to a first order statically").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.config import SocketConfig
from repro.dataflow.fusion import Kernel
from repro.dataflow.graph import OpKind


class Channel(enum.Enum):
    """Bandwidth-carrying entities the compiler must budget."""

    HBM = "hbm"
    DDR = "ddr"
    D2D = "d2d"
    P2P = "p2p"
    HOST = "host"


@dataclass(frozen=True)
class Stream:
    """One sustained data flow with its required byte rate."""

    name: str
    channel: Channel
    rate: float  # bytes/second required to sustain the pipeline

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"{self.name}: negative rate {self.rate}")


@dataclass
class ChannelBudget:
    """Capacity vs demand for one channel."""

    channel: Channel
    capacity: float
    streams: List[Stream] = field(default_factory=list)

    @property
    def demand(self) -> float:
        return sum(s.rate for s in self.streams)

    @property
    def subscription(self) -> float:
        """Demand as a fraction of capacity (>1 means oversubscribed)."""
        return self.demand / self.capacity if self.capacity > 0 else float("inf")

    @property
    def oversubscribed(self) -> bool:
        return self.subscription > 1.0


@dataclass
class BandwidthReport:
    """The static analysis result for one kernel on one target."""

    kernel_name: str
    budgets: Dict[Channel, ChannelBudget]

    @property
    def bottleneck(self) -> ChannelBudget:
        return max(self.budgets.values(), key=lambda b: b.subscription)

    @property
    def slowdown(self) -> float:
        """Factor by which the pipeline slows due to the worst channel.

        A channel at subscription S > 1 stretches the kernel by S (all
        streams on it are served proportionally slower); S <= 1 means the
        memory system keeps up and the pipeline runs at full rate.
        """
        return max(1.0, self.bottleneck.subscription)

    def oversubscribed_channels(self) -> List[Channel]:
        return [c for c, b in self.budgets.items() if b.oversubscribed]

    def summary(self) -> str:
        parts = [
            f"{c.value}: {b.subscription * 100:.0f}%"
            for c, b in sorted(self.budgets.items(), key=lambda kv: kv[0].value)
            if b.streams
        ]
        return f"{self.kernel_name}: " + ", ".join(parts)


def channel_capacities(
    socket: SocketConfig, sockets: int = 1
) -> Dict[Channel, float]:
    """Hardware capacity of each channel for a multi-socket target."""
    if sockets < 1:
        raise ValueError(f"sockets must be >= 1, got {sockets}")
    return {
        Channel.HBM: socket.hbm.bandwidth * sockets,
        Channel.DDR: socket.ddr.bandwidth * sockets,
        Channel.D2D: socket.d2d_bandwidth * sockets,
        Channel.P2P: socket.p2p_bandwidth * sockets,
        Channel.HOST: socket.host_link_bandwidth,
    }


def kernel_streams(
    kernel: Kernel,
    duration_s: float,
    weight_channel: Channel = Channel.HBM,
    activation_channel: Channel = Channel.HBM,
) -> List[Stream]:
    """Derive the sustained streams a kernel needs over its duration.

    Every external tensor becomes one stream whose rate spreads its bytes
    over the kernel's execution; collective traffic becomes a P2P stream.
    ``weight_channel``/``activation_channel`` let callers model spilled
    placements (weights or activations resident in DDR).
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    streams: List[Stream] = []
    for tensor in kernel.external_inputs:
        channel = weight_channel if tensor.is_weight else activation_channel
        streams.append(
            Stream(name=f"in:{tensor.name}", channel=channel,
                   rate=tensor.size_bytes / duration_s)
        )
    for tensor in kernel.external_outputs:
        streams.append(
            Stream(name=f"out:{tensor.name}", channel=activation_channel,
                   rate=tensor.size_bytes / duration_s)
        )
    if kernel.comm_bytes > 0:
        streams.append(
            Stream(name=f"p2p:{kernel.name}", channel=Channel.P2P,
                   rate=kernel.comm_bytes / duration_s)
        )
    return streams


def analyze_kernel_bandwidth(
    kernel: Kernel,
    duration_s: float,
    socket: SocketConfig = SocketConfig(),
    sockets: int = 1,
    weight_channel: Channel = Channel.HBM,
    activation_channel: Channel = Channel.HBM,
) -> BandwidthReport:
    """Static bandwidth check of one kernel at a target duration.

    The returned report says whether the memory system can feed the
    pipeline at that rate, and if not, which channel throttles it and by
    how much — the paper's first-order static performance tuning.
    """
    capacities = channel_capacities(socket, sockets)
    budgets = {c: ChannelBudget(channel=c, capacity=cap)
               for c, cap in capacities.items()}
    for stream in kernel_streams(kernel, duration_s, weight_channel,
                                 activation_channel):
        budgets[stream.channel].streams.append(stream)
    return BandwidthReport(kernel_name=kernel.name, budgets=budgets)


def throttle_recommendations(report: BandwidthReport) -> Dict[str, float]:
    """Per-stream throttle factors that bring every channel to <=100%.

    Reproduces the packet-throttling remedy of Section VII: on an
    oversubscribed channel every stream is scaled by the inverse
    subscription; streams on healthy channels keep their full rate.
    """
    factors: Dict[str, float] = {}
    for budget in report.budgets.values():
        scale = min(1.0, 1.0 / budget.subscription) if budget.streams else 1.0
        for stream in budget.streams:
            factors[stream.name] = scale
    return factors
