"""Operator constructors with exact FLOP and byte accounting.

Each helper builds an :class:`~repro.dataflow.graph.Operator` from tensor
shapes, computing FLOPs with the standard conventions:

- GEMM ``(M,K) @ (K,N)``: ``2*M*K*N`` FLOPs (multiply + accumulate),
- elementwise: ``flops_per_element * numel``,
- softmax: 5 FLOPs/element (max, subtract, exp, sum, divide),
- RMS/LayerNorm: ~4-6 FLOPs/element,
- RoPE: 6 FLOPs/element on the rotated halves.

Sparsity (sparseGPT's 87.5% weight sparsity) scales both GEMM FLOPs and
weight bytes, matching an implementation that stores and computes only
non-zero weights.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.dataflow.graph import (
    AccessPattern,
    DType,
    Operator,
    OpKind,
    TensorSpec,
)


def tensor(
    name: str,
    shape: Sequence[int],
    dtype: DType = DType.BF16,
    is_weight: bool = False,
) -> TensorSpec:
    """Convenience constructor for a :class:`TensorSpec`."""
    return TensorSpec(name=name, shape=tuple(shape), dtype=dtype, is_weight=is_weight)


def gemm(
    name: str,
    a: TensorSpec,
    b: TensorSpec,
    out_name: str,
    m: int,
    k: int,
    n: int,
    batch: int = 1,
    sparsity: float = 0.0,
    dtype: DType = DType.BF16,
    a_pattern: AccessPattern = AccessPattern.CONTIGUOUS,
    b_pattern: AccessPattern = AccessPattern.CONTIGUOUS,
) -> Operator:
    """A (possibly batched, possibly sparse) matrix multiplication.

    ``sparsity`` is the fraction of zero weights skipped by the kernel;
    it scales FLOPs but not activation bytes.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"{name}: sparsity must be in [0, 1), got {sparsity}")
    flops = 2.0 * batch * m * k * n * (1.0 - sparsity)
    out_shape: Tuple[int, ...] = (batch, m, n) if batch > 1 else (m, n)
    return Operator(
        name=name,
        kind=OpKind.GEMM,
        inputs=(a, b),
        outputs=(tensor(out_name, out_shape, dtype),),
        flops=flops,
        input_patterns=(a_pattern, b_pattern),
        gemm_dims=(batch * m, k, n),
    )


def linear(
    name: str,
    activation: TensorSpec,
    weight_name: str,
    in_features: int,
    out_features: int,
    tokens: int,
    sparsity: float = 0.0,
    dtype: DType = DType.BF16,
) -> Operator:
    """A weightful projection: ``(tokens, in) @ (in, out)``.

    The weight tensor is created here and marked ``is_weight`` so memory
    planning and CoE model-switching count it. Sparse weights store only
    the non-zero fraction.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"{name}: sparsity must be in [0, 1), got {sparsity}")
    dense_elems = in_features * out_features
    stored = max(1, round(dense_elems * (1.0 - sparsity)))
    weight = TensorSpec(
        name=weight_name, shape=(stored,), dtype=dtype, is_weight=True
    )
    return Operator(
        name=name,
        kind=OpKind.GEMM,
        inputs=(activation, weight),
        outputs=(tensor(f"{name}.out", (tokens, out_features), dtype),),
        flops=2.0 * tokens * in_features * out_features * (1.0 - sparsity),
        gemm_dims=(tokens, in_features, out_features),
    )


def elementwise(
    name: str,
    inputs: Sequence[TensorSpec],
    out_name: str,
    flops_per_element: float = 1.0,
    out_shape: Optional[Sequence[int]] = None,
    dtype: DType = DType.BF16,
    patterns: Optional[Sequence[AccessPattern]] = None,
) -> Operator:
    """An elementwise map over one or more inputs (add, mul, SiLU, ...)."""
    if not inputs:
        raise ValueError(f"{name}: elementwise needs at least one input")
    shape = tuple(out_shape) if out_shape is not None else inputs[0].shape
    numel = 1
    for dim in shape:
        numel *= dim
    return Operator(
        name=name,
        kind=OpKind.ELEMENTWISE,
        inputs=tuple(inputs),
        outputs=(tensor(out_name, shape, dtype),),
        flops=flops_per_element * numel,
        input_patterns=tuple(patterns) if patterns is not None else (),
    )


def transpose(name: str, source: TensorSpec, out_name: str) -> Operator:
    """A 2-D (last-two-axes) transpose.

    Zero FLOPs; the interesting property is the ``TRANSPOSE`` access
    pattern, which breaks GPU fusion but is absorbed into PMU
    diagonally-striped banking on the SN40L (paper Section IV-B).
    """
    if len(source.shape) < 2:
        raise ValueError(f"{name}: cannot transpose rank-{len(source.shape)} tensor")
    shape = list(source.shape)
    shape[-1], shape[-2] = shape[-2], shape[-1]
    return Operator(
        name=name,
        kind=OpKind.TRANSPOSE,
        inputs=(source,),
        outputs=(tensor(out_name, shape, source.dtype),),
        flops=0.0,
        input_patterns=(AccessPattern.TRANSPOSE,),
    )


def reshape(name: str, source: TensorSpec, out_name: str, out_shape: Sequence[int]) -> Operator:
    """A metadata-only reshape (strided view materialisation)."""
    out = tensor(out_name, out_shape, source.dtype)
    if out.num_elements != source.num_elements:
        raise ValueError(
            f"{name}: reshape changes element count "
            f"({source.num_elements} -> {out.num_elements})"
        )
    return Operator(
        name=name,
        kind=OpKind.RESHAPE,
        inputs=(source,),
        outputs=(out,),
        flops=0.0,
        input_patterns=(AccessPattern.STRIDED,),
    )


def fft_permute(name: str, source: TensorSpec, out_name: str) -> Operator:
    """A bit-reversal/stride permutation from an FFT decomposition.

    Like transpose, zero FLOPs but a fusion-hostile ``SHUFFLE`` pattern.
    """
    return Operator(
        name=name,
        kind=OpKind.FFT_PERMUTE,
        inputs=(source,),
        outputs=(tensor(out_name, source.shape, source.dtype),),
        flops=0.0,
        input_patterns=(AccessPattern.SHUFFLE,),
    )


def softmax(name: str, source: TensorSpec, out_name: str) -> Operator:
    """Row softmax: 5 FLOPs per element (max/sub/exp/sum/div)."""
    return Operator(
        name=name,
        kind=OpKind.SOFTMAX,
        inputs=(source,),
        outputs=(tensor(out_name, source.shape, source.dtype),),
        flops=5.0 * source.num_elements,
    )


def norm(
    name: str,
    source: TensorSpec,
    weight_name: str,
    out_name: str,
    flops_per_element: float = 4.0,
) -> Operator:
    """RMSNorm (4 FLOPs/elem) or LayerNorm (pass 6) with a learned scale."""
    hidden = source.shape[-1]
    weight = TensorSpec(name=weight_name, shape=(hidden,), dtype=source.dtype, is_weight=True)
    return Operator(
        name=name,
        kind=OpKind.NORM,
        inputs=(source, weight),
        outputs=(tensor(out_name, source.shape, source.dtype),),
        flops=flops_per_element * source.num_elements,
        input_patterns=(AccessPattern.CONTIGUOUS, AccessPattern.BROADCAST),
    )


def rope(name: str, source: TensorSpec, out_name: str) -> Operator:
    """Rotary position embedding: 6 FLOPs/element, shuffled lane access."""
    return Operator(
        name=name,
        kind=OpKind.ROPE,
        inputs=(source,),
        outputs=(tensor(out_name, source.shape, source.dtype),),
        flops=6.0 * source.num_elements,
        input_patterns=(AccessPattern.SHUFFLE,),
    )


def reduction(
    name: str,
    source: TensorSpec,
    out_name: str,
    out_shape: Sequence[int],
    flops_per_element: float = 1.0,
) -> Operator:
    """A reduction (sum/max) from ``source.shape`` down to ``out_shape``."""
    return Operator(
        name=name,
        kind=OpKind.REDUCTION,
        inputs=(source,),
        outputs=(tensor(out_name, out_shape, source.dtype),),
        flops=flops_per_element * source.num_elements,
    )


def embedding(
    name: str,
    ids: TensorSpec,
    table_name: str,
    vocab: int,
    hidden: int,
    tokens: int,
    dtype: DType = DType.BF16,
) -> Operator:
    """Embedding-table gather for ``tokens`` token ids."""
    table = TensorSpec(name=table_name, shape=(vocab, hidden), dtype=dtype, is_weight=True)
    return Operator(
        name=name,
        kind=OpKind.EMBEDDING,
        inputs=(ids, table),
        outputs=(tensor(f"{name}.out", (tokens, hidden), dtype),),
        flops=0.0,
        input_patterns=(AccessPattern.CONTIGUOUS, AccessPattern.GATHER),
    )


def kv_append(name: str, source: TensorSpec, cache_name: str, cache_shape: Sequence[int]) -> Operator:
    """Append new K/V vectors to the KV cache (streaming write)."""
    return Operator(
        name=name,
        kind=OpKind.KV_APPEND,
        inputs=(source,),
        outputs=(tensor(cache_name, cache_shape, source.dtype),),
        flops=0.0,
    )


def allreduce(name: str, source: TensorSpec, out_name: str, participants: int) -> Operator:
    """Tensor-parallel all-reduce across ``participants`` sockets.

    FLOPs are the adds performed locally; ``comm_bytes`` is the per-socket
    traffic of a ring all-reduce, ``2 * (p-1)/p * bytes``.
    """
    if participants < 1:
        raise ValueError(f"{name}: participants must be >= 1, got {participants}")
    ring_factor = 2.0 * (participants - 1) / participants if participants > 1 else 0.0
    return Operator(
        name=name,
        kind=OpKind.ALLREDUCE,
        inputs=(source,),
        outputs=(tensor(out_name, source.shape, source.dtype),),
        flops=float(source.num_elements) * max(participants - 1, 0),
        comm_bytes=ring_factor * source.size_bytes,
    )


def sample(name: str, logits: TensorSpec, out_name: str) -> Operator:
    """Greedy/temperature sampling over a logits vector (argmax + rng)."""
    return Operator(
        name=name,
        kind=OpKind.SAMPLE,
        inputs=(logits,),
        outputs=(tensor(out_name, (logits.shape[0], 1), DType.INT32),),
        flops=2.0 * logits.num_elements,
    )
