"""Cost-driven fusion: choose kernel boundaries by minimizing modeled time.

The heuristic policies in :mod:`repro.dataflow.fusion` (per-layer hints,
resource-bounded greedy growth) mirror what the SN40L compiler ships. This
module adds the principled upper bound: dynamic programming over the
topological order that picks the *time-optimal* contiguous segmentation
under the kernel cost model.

``best[j] = min over i <= j of best[i-1] + time(kernel spanning ops i..j)``

subject to each segment fitting the target's PCU/PMU budget and the
``max_segment`` length cap. With the cap at the graph size, every policy
in this library emits contiguous topological segments the DP also
considers, so its result is a true lower bound on their modeled times —
asserted by tests, which makes it a permanent regression check on the
heuristics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.dataflow.fusion import FusionPlan, Kernel, _build_kernel
from repro.dataflow.graph import DataflowGraph

if TYPE_CHECKING:  # perf.kernel_cost imports dataflow.fusion; resolve the
    # package-level cycle by importing the cost model at call time.
    from repro.perf.kernel_cost import ExecutionTarget, Orchestration


def optimal_fusion(
    graph: DataflowGraph,
    target: "ExecutionTarget",
    orchestration: "Orchestration" = None,
    max_segment: int = 48,
    pcu_budget: Optional[int] = None,
) -> FusionPlan:
    """Time-optimal contiguous fusion under the kernel cost model.

    ``max_segment`` caps segment length (keeps the DP near-linear; 48 ops
    comfortably covers a fused decoder layer). ``pcu_budget`` defaults to
    the target's socket-aggregate PCU count; segments whose compute
    stages exceed it are infeasible.
    """
    from repro.perf.kernel_cost import Orchestration, cost_kernel

    if orchestration is None:
        orchestration = Orchestration.SOFTWARE
    if max_segment < 1:
        raise ValueError(f"max_segment must be >= 1, got {max_segment}")
    order = graph.topological_order()
    n = len(order)
    if n == 0:
        raise ValueError("cannot fuse an empty graph")
    if pcu_budget is None:
        # One PCU minimum per compute stage; 32 per GEMM stage, matching
        # the streaming policy's bandwidth-matching rule.
        pcu_budget = 1040 * target.sockets

    def segment_pcus(ops) -> int:
        total = 0
        for op in ops:
            if op.kind.is_data_movement:
                continue
            total += 32 if op.kind.is_compute_heavy else 2
        return total

    # best[j] = (time, split) for the first j ops (1-indexed).
    INF = float("inf")
    best_time = [INF] * (n + 1)
    best_split = [0] * (n + 1)
    best_time[0] = 0.0
    kernel_cache: List[Optional[Kernel]] = [None] * (n + 1)

    for j in range(1, n + 1):
        for i in range(max(1, j - max_segment + 1), j + 1):
            ops = order[i - 1 : j]
            if segment_pcus(ops) > pcu_budget:
                continue
            kernel = _build_kernel(f"seg{i - 1}_{j}", ops, graph)
            cost = cost_kernel(
                kernel, target, pipelined=len(ops) > 1, orchestration=orchestration
            )
            candidate = best_time[i - 1] + cost.total_s
            if candidate < best_time[j]:
                best_time[j] = candidate
                best_split[j] = i - 1

    if best_time[n] == INF:
        raise ValueError(
            "no feasible segmentation: a single operator exceeds the PCU "
            "budget — raise pcu_budget"
        )

    # Reconstruct the segmentation.
    boundaries: List[int] = []
    j = n
    while j > 0:
        boundaries.append(j)
        j = best_split[j]
    boundaries.reverse()

    kernels: List[Kernel] = []
    start = 0
    for end in boundaries:
        kernels.append(_build_kernel(f"k{len(kernels)}", order[start:end], graph))
        start = end
    plan = FusionPlan(graph=graph, kernels=kernels, policy="optimal")
    plan.validate()
    return plan


def plan_time(
    plan: FusionPlan,
    target: "ExecutionTarget",
    orchestration: "Orchestration" = None,
) -> float:
    """Modeled time of any plan under the same cost rules the DP uses."""
    from repro.perf.kernel_cost import Orchestration, cost_kernel

    if orchestration is None:
        orchestration = Orchestration.SOFTWARE
    total = 0.0
    for kernel in plan.kernels:
        pipelined = plan.policy != "unfused" and kernel.num_ops > 1
        total += cost_kernel(kernel, target, pipelined, orchestration).total_s
    return total
