"""Operational-intensity analysis with a tiled-traffic model (paper Table I).

A kernel's *minimal* off-chip traffic is its boundary tensors counted once.
Real traffic is higher when the kernel's working set exceeds on-chip
capacity: a tiled GEMM ``C(M,N) = A(M,K) @ B(K,N)`` with ``T x T`` output
tiles reads every A row-panel once per output column block and every B
column-panel once per output row block:

    traffic(A) = M*K * ceil(N/T),   traffic(B) = K*N * ceil(M/T)

with ``T`` set by the on-chip capacity available to the kernel. Fusion
raises the effective capacity — an unfused GPU kernel works out of one
thread block's shared memory, a conventionally-fused kernel out of a larger
persistent working set, and a fully spatially-fused SN40L kernel out of
520 MiB of distributed PMU SRAM — which is precisely why fusion raises
operational intensity (paper Table I).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.dataflow.fusion import FusionPlan, Kernel
from repro.dataflow.graph import OpKind
from repro.units import KiB, MiB


@dataclass(frozen=True)
class TrafficModel:
    """On-chip capacity available to one kernel, per fusion style.

    ``onchip_bytes`` bounds the GEMM tile working set (three ``T x T``
    tiles: one of A, one of B, one accumulator).
    """

    name: str
    onchip_bytes: int

    def tile_dim(self, elem_bytes: int) -> int:
        """Largest square tile dimension fitting three tiles on-chip."""
        elems = self.onchip_bytes // (3 * elem_bytes)
        return max(1, int(math.isqrt(elems)))


#: An unfused GPU kernel works out of one thread block's shared memory.
GPU_UNFUSED = TrafficModel(name="gpu-unfused", onchip_bytes=64 * KiB)
#: A conventionally fused kernel can keep a larger persistent working set.
GPU_FUSED = TrafficModel(name="gpu-fused", onchip_bytes=512 * KiB)
#: A spatially fused SN40L kernel has the full distributed PMU SRAM.
SN40L_STREAMING = TrafficModel(name="sn40l-streaming", onchip_bytes=520 * MiB)


def kernel_traffic_bytes(kernel: Kernel, model: TrafficModel) -> float:
    """Off-chip traffic of one kernel under a traffic model.

    Boundary tensors are counted once; external GEMM operands additionally
    pay tiling re-reads when the working set exceeds ``model.onchip_bytes``.
    Internal (fused-away) tensors never touch memory.
    """
    traffic = float(kernel.offchip_bytes)
    external_names = {t.name for t in kernel.external_inputs}
    for op in kernel.ops:
        if op.gemm_dims is None:
            continue
        m, k, n = op.gemm_dims
        elem_bytes = op.inputs[0].dtype.size_bytes
        tile = model.tile_dim(elem_bytes)
        a, b = op.inputs[0], op.inputs[1]
        if a.name in external_names:
            rereads = math.ceil(n / tile) - 1
            traffic += rereads * float(m * k * elem_bytes)
        if b.name in external_names:
            rereads = math.ceil(m / tile) - 1
            traffic += rereads * float(k * n * b.dtype.size_bytes)
    return traffic


def plan_traffic_bytes(plan: FusionPlan, model: TrafficModel) -> float:
    """Total off-chip traffic of a fusion plan under a traffic model."""
    return sum(kernel_traffic_bytes(k, model) for k in plan.kernels)


def operational_intensity(plan: FusionPlan, model: TrafficModel) -> float:
    """FLOPs per off-chip byte for a plan under a traffic model."""
    traffic = plan_traffic_bytes(plan, model)
    if traffic <= 0:
        return float("inf")
    return plan.total_flops / traffic


def is_memory_bound(intensity: float, peak_flops: float, mem_bandwidth: float) -> bool:
    """Roofline verdict: below the ridge point means memory-bound.

    The paper's example: an A100 with ~300 TFLOPS over ~2 TB/s has a ridge
    of ~150 FLOPs/byte, so kernels under 150 are memory-bound.
    """
    ridge = peak_flops / mem_bandwidth
    return intensity < ridge


@dataclass(frozen=True)
class IntensityReport:
    """Per-fusion-level intensity for one graph (the Table I format)."""

    levels: Dict[str, float]

    def rows(self) -> List[str]:
        return [f"{name:<28s} {value:10.1f}" for name, value in self.levels.items()]


def intensity_report(plans: Dict[str, tuple]) -> IntensityReport:
    """Build a Table-I-style report.

    ``plans`` maps a level name to ``(FusionPlan, TrafficModel)``.
    """
    return IntensityReport(
        levels={
            name: operational_intensity(plan, model)
            for name, (plan, model) in plans.items()
        }
    )
