"""Analytic throughput model for spatially fused pipelines.

A fused kernel runs as a coarse-grained pipeline: tensors are tiled and
streamed through stages (paper Section III-A). In steady state, throughput
is set by the slowest stage; makespan is

    fill_latency + num_tiles / bottleneck_rate.

This module computes per-stage times from a :class:`KernelPlacement` and
provides `simulate()` to cross-check the analytic bound against the
discrete-event model in :mod:`repro.sim.streams`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dataflow.fusion import Kernel
from repro.dataflow.graph import Operator
from repro.dataflow.placement import KernelPlacement
from repro.sim.streams import Pipeline, PipelineStage, uniform_stage


@dataclass(frozen=True)
class StageTiming:
    """Per-tile service time of one pipeline stage."""

    op_name: str
    time_per_tile_s: float


@dataclass
class PipelineEstimate:
    """Analytic timing of one fused kernel's pipeline."""

    kernel_name: str
    num_tiles: int
    stages: List[StageTiming]

    @property
    def bottleneck(self) -> StageTiming:
        return max(self.stages, key=lambda s: s.time_per_tile_s)

    @property
    def fill_latency_s(self) -> float:
        return sum(s.time_per_tile_s for s in self.stages)

    @property
    def steady_state_s(self) -> float:
        return self.num_tiles * self.bottleneck.time_per_tile_s

    @property
    def total_s(self) -> float:
        """Fill the pipeline once, then stream at the bottleneck rate."""
        return self.fill_latency_s + max(0, self.num_tiles - 1) * (
            self.bottleneck.time_per_tile_s
        )


def analyze_pipeline(
    kernel: Kernel,
    placement: KernelPlacement,
    num_tiles: int,
    compute_efficiency: float = 0.9,
) -> PipelineEstimate:
    """Per-stage tile times from the placement's PCU allocations.

    Each compute stage's work divides evenly over the tiles streamed
    through the kernel and over the PCUs assigned to the stage.
    """
    if num_tiles < 1:
        raise ValueError(f"num_tiles must be >= 1, got {num_tiles}")
    if not 0.0 < compute_efficiency <= 1.0:
        raise ValueError(f"bad compute_efficiency {compute_efficiency}")
    stages = []
    for stage in placement.stages:
        op = _find_op(kernel, stage.op_name)
        per_tile_flops = op.flops / num_tiles
        time = per_tile_flops / (stage.stage_flops * compute_efficiency)
        stages.append(StageTiming(op_name=op.name, time_per_tile_s=time))
    if not stages:
        raise ValueError(f"{kernel.name}: no compute stages to analyze")
    return PipelineEstimate(kernel_name=kernel.name, num_tiles=num_tiles, stages=stages)


def _find_op(kernel: Kernel, name: str) -> Operator:
    for op in kernel.ops:
        if op.name == name:
            return op
    raise KeyError(f"{kernel.name} has no op {name!r}")


def simulate(estimate: PipelineEstimate, buffer_capacity: int = 2) -> float:
    """Cross-check: run the estimate's stages through the event simulator.

    Returns the simulated makespan, which should approach
    ``estimate.total_s`` (within buffering slack) — asserted by tests.
    """
    stages = [
        uniform_stage(s.op_name, s.time_per_tile_s, buffer_capacity)
        for s in estimate.stages
    ]
    return Pipeline(stages).run(estimate.num_tiles)
