"""Shared benchmark infrastructure: the parallel sweep runner.

The repo's ``benchmarks/`` suites all have the same shape — a small
parameter grid (policy x node count x workload), one deterministic
simulation per grid point, results merged into a table and a
``BENCH_*.json`` payload. :mod:`repro.bench.sweep` is the one runner
they share: deterministic per-point seeding, optional multiprocess
fan-out whose results are byte-identical to a serial run, and cost-cache
hygiene between points.
"""

from repro.bench.sweep import (
    SweepPoint,
    derive_seed,
    grid,
    run_sweep,
    sweep_points,
)

__all__ = [
    "SweepPoint",
    "derive_seed",
    "grid",
    "run_sweep",
    "sweep_points",
]
