"""Deterministic parallel sweep runner for the benchmark grids.

Every ``BENCH_*`` suite sweeps a small configuration grid and runs one
deterministic simulation per point. This module factors that loop out:

- :func:`grid` expands named axes into points in a fixed row-major
  order (last axis fastest), so a grid's point order — and therefore
  every merged result — is a pure function of the axes.
- :func:`derive_seed` gives each point its own RNG seed from
  ``(grid index, base seed)`` via SHA-256, so a point's randomness
  depends only on *where it sits in the grid*, never on which worker
  ran it or in what order. A parallel run is byte-identical to a
  serial run by construction.
- :func:`run_sweep` fans the points out over a ``fork`` process pool
  (or runs them serially — the default on single-CPU boxes and the
  fallback where ``fork`` is unavailable) and merges results back in
  grid order. :func:`repro.systems.platforms.clear_cost_caches` runs
  before every point, so one point's memoized cost entries neither
  leak memory across a long sweep nor bleed cache state into another
  point's measurement.

The point function must be defined at module level (the pool pickles it
by qualified name) and must be deterministic given its
:class:`SweepPoint` — everything the repo's simulations already are.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.systems.platforms import clear_cost_caches

__all__ = [
    "SweepPoint",
    "derive_seed",
    "grid",
    "profile_point",
    "run_sweep",
    "sweep_points",
]

#: Environment override for the worker count (0 / unset = auto).
PROCESSES_ENV = "REPRO_SWEEP_PROCESSES"


def derive_seed(base_seed: int, index: int) -> int:
    """Per-point RNG seed from ``(grid index, base seed)``.

    SHA-256 of the pair, truncated to 63 bits (always non-negative, fits
    any RNG that wants a C long). Adjacent indices get statistically
    unrelated seeds — unlike ``base_seed + index``, two axes' streams
    never collide — and the mapping is stable across Python versions and
    platforms (no ``hash()`` randomization).
    """
    digest = hashlib.sha256(f"{base_seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: its position, parameters, and derived seed."""

    index: int
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0

    def __getitem__(self, key: str) -> Any:
        return self.params[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)


def grid(axes: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Expand named axes into the full cross product, row-major.

    The last axis varies fastest (``itertools.product`` order), and axis
    order follows the mapping's insertion order — so the same axes dict
    always yields the same point sequence.
    """
    names = list(axes)
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(axes[name] for name in names))
    ]


def sweep_points(
    axes_or_params: "Mapping[str, Sequence[Any]] | Sequence[Mapping[str, Any]]",
    base_seed: int = 0,
) -> List[SweepPoint]:
    """Build the ordered :class:`SweepPoint` list for a grid.

    Accepts either named axes (expanded via :func:`grid`) or an explicit
    parameter-dict sequence for irregular grids.
    """
    if isinstance(axes_or_params, Mapping):
        params = grid(axes_or_params)
    else:
        params = [dict(p) for p in axes_or_params]
    return [
        SweepPoint(index=i, params=p, seed=derive_seed(base_seed, i))
        for i, p in enumerate(params)
    ]


def _run_point(job: "tuple[Callable[[SweepPoint], Any], SweepPoint]") -> Any:
    """Run one point with clean cost caches (worker and serial path)."""
    fn, point = job
    clear_cost_caches()
    return fn(point)


def profile_point(fn: Callable[..., Any], *args: Any,
                  top: int = 25, stream: Any = None) -> Any:
    """Run ``fn(*args)`` under :mod:`cProfile` and print a hotspot table.

    Prints the top ``top`` entries sorted by cumulative time to
    ``stream`` (default stdout) and returns ``fn``'s result, so a
    profiled point still feeds the sweep's merged results. Profiling
    adds interpreter overhead — treat the printed times as relative
    hotspots, not as the throughput numbers the unprofiled run reports.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    result = profiler.runcall(fn, *args)
    stats = pstats.Stats(profiler, stream=stream if stream is not None else sys.stdout)
    stats.sort_stats("cumulative").print_stats(top)
    return result


def _resolve_processes(processes: Optional[int], num_points: int) -> int:
    if processes is None:
        env = os.environ.get(PROCESSES_ENV, "").strip()
        processes = int(env) if env else 0
        if processes <= 0:
            processes = os.cpu_count() or 1
    return max(1, min(processes, num_points))


def run_sweep(
    fn: Callable[[SweepPoint], Any],
    axes_or_params: "Mapping[str, Sequence[Any]] | Sequence[Mapping[str, Any]]",
    base_seed: int = 0,
    processes: Optional[int] = None,
    profile: bool = False,
) -> List[Any]:
    """Run ``fn`` over every grid point; results merge in grid order.

    ``processes=None`` honours ``REPRO_SWEEP_PROCESSES`` and otherwise
    uses the CPU count; ``1`` (or a single-point grid) runs serially in
    this process. The parallel path requires the ``fork`` start method —
    where it is unavailable the sweep silently degrades to serial, which
    produces byte-identical results anyway (that equivalence is pinned
    by ``tests/bench/test_sweep.py``).

    ``profile=True`` forces a serial run and wraps the *first* point in
    :func:`profile_point` (top-25 cumulative table on stdout); results
    are unchanged since every point is deterministic.
    """
    points = sweep_points(axes_or_params, base_seed=base_seed)
    jobs = [(fn, p) for p in points]
    if profile:
        return [
            profile_point(_run_point, job) if i == 0 else _run_point(job)
            for i, job in enumerate(jobs)
        ]
    nproc = _resolve_processes(processes, len(points))
    if nproc > 1:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            ctx = None
        if ctx is not None:
            with ctx.Pool(nproc) as pool:
                return pool.map(_run_point, jobs)
    return [_run_point(job) for job in jobs]
