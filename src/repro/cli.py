"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``info`` — the SN40L hardware summary (published-spec check),
- ``models`` — the Table II workload catalogue,
- ``fusion MODEL PHASE`` — fusion/orchestration speedups for one workload,
- ``coe`` — CoE serving comparison across SN40L / DGX A100 / DGX H100,
- ``serve-bench`` — throughput engine benchmark (batching/overlap policies),
- ``cluster-bench`` — multi-node scaling curve (routing/stealing policies
  with online hot-expert replication; optional ``-o`` JSON dump),
- ``footprint`` — nodes required vs expert count (Figure 13),
- ``intensity`` — the Table I operational-intensity analysis,
- ``plan MODEL PHASE`` — print the fused kernel plan (stages/buffers),
- ``trace MODEL PHASE -o FILE`` — write a Perfetto/Chrome trace of the
  kernel schedule; ``trace --serve`` traces a seeded serve-bench run at
  real simulated timestamps instead, and ``trace --cluster`` traces a
  multi-node run with per-node lanes (see docs/OBSERVABILITY.md).

The serving subcommands (``serve-bench``, ``cluster-bench``, ``trace``)
share one parent parser, so ``--platform``, ``--policy`` (node
scheduling), ``--cluster-policy`` (cross-node dispatch), ``--num-nodes``,
``--zipf``, ``-o/--output`` and friends are spelled identically
everywhere, and they all route through :func:`repro.serve`. Cluster
paths additionally take ``--inject-fault NODE:T`` (repeatable;
``slow:``/``copyfail:`` variants too) and ``--deadline`` for the
fault-tolerance machinery of docs/MODEL.md section 8.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.units import fmt_bandwidth, fmt_bytes, fmt_time


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.arch.config import sn40l_node, sn40l_socket

    socket = sn40l_socket()
    node = sn40l_node()
    print("SN40L socket:")
    print(f"  PCUs / PMUs          : {socket.num_pcus} / {socket.num_pmus}")
    print(f"  peak BF16 compute    : {socket.peak_flops / 1e12:.0f} TFLOPS")
    print(f"  on-chip SRAM         : {fmt_bytes(socket.sram_capacity_bytes)} "
          f"@ {fmt_bandwidth(socket.sram_bandwidth)}")
    print(f"  HBM                  : {fmt_bytes(socket.hbm.capacity_bytes)} "
          f"@ {fmt_bandwidth(socket.hbm.bandwidth)}")
    print(f"  DDR                  : {fmt_bytes(socket.ddr.capacity_bytes)} "
          f"@ {fmt_bandwidth(socket.ddr.bandwidth)}")
    print(f"SN40L node ({node.sockets} sockets):")
    print(f"  peak compute         : {node.peak_flops / 1e15:.2f} PFLOPS")
    print(f"  HBM / DDR capacity   : {fmt_bytes(node.hbm_capacity_bytes)} / "
          f"{fmt_bytes(node.ddr_capacity_bytes)}")
    print(f"  DDR->HBM copy path   : "
          f"{fmt_bandwidth(1.05e12)} (calibrated; paper: >1 TB/s)")
    return 0


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.models.catalog import CATALOG

    print(f"{'model':<16s} {'params':>9s} {'stored':>10s} "
          f"{'layers':>6s} {'hidden':>6s} {'kv':>3s}")
    for name, cfg in sorted(CATALOG.items()):
        print(f"{name:<16s} {cfg.param_count / 1e9:8.2f}B "
              f"{fmt_bytes(cfg.weight_bytes):>10s} {cfg.layers:6d} "
              f"{cfg.hidden:6d} {cfg.kv_heads:3d}")
    return 0


def _cmd_fusion(args: argparse.Namespace) -> int:
    from repro.arch.config import SocketConfig
    from repro.dataflow import fusion
    from repro.models.catalog import get_model
    from repro.models.transformer import decode_graph, prefill_graph, train_graph
    from repro.perf.kernel_cost import ExecutionTarget, Orchestration, cost_plan

    builders = {"prefill": prefill_graph, "decode": decode_graph,
                "train": train_graph}
    try:
        cfg = get_model(args.model)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    seq = min(args.seq, cfg.max_seq)
    graph = builders[args.phase](cfg, args.batch, seq, tp=args.sockets)
    target = ExecutionTarget.from_socket(SocketConfig(), sockets=args.sockets)
    unf = cost_plan(fusion.unfused(graph), target, Orchestration.SOFTWARE)
    fused = fusion.group_by_prefix(graph)
    so = cost_plan(fused, target, Orchestration.SOFTWARE)
    ho = cost_plan(fused, target, Orchestration.HARDWARE)
    print(f"{graph.name} on {args.sockets} socket(s):")
    print(f"  unfused ({unf.num_launches:4d} kernels): {fmt_time(unf.total_s)}")
    print(f"  fused+SO ({so.num_launches:3d} kernels): {fmt_time(so.total_s)} "
          f"({unf.total_s / so.total_s:.2f}x)")
    print(f"  fused+HO ({ho.num_launches:3d} kernels): {fmt_time(ho.total_s)} "
          f"({unf.total_s / ho.total_s:.2f}x)")
    return 0


def _cmd_coe(args: argparse.Namespace) -> int:
    from repro.coe.expert import build_samba_coe_library
    from repro.coe.serving import ExpertServer
    from repro.systems.platforms import (
        dgx_a100_platform,
        dgx_h100_platform,
        sn40l_platform,
    )

    library = build_samba_coe_library(args.experts)
    print(f"CoE: {len(library)} experts, "
          f"{library.total_params / 1e12:.2f}T parameters")
    baseline = None
    for platform in (sn40l_platform(), dgx_h100_platform(), dgx_a100_platform()):
        hosted = platform.max_hosted_experts(
            library.experts[0].weight_bytes,
            reserved_bytes=library.experts[0].weight_bytes,
        )
        if len(library) > hosted:
            print(f"  {platform.name:<12s}: OOM ({hosted} experts max)")
            continue
        server = ExpertServer(platform, library)
        experts = library.experts[: args.batch]
        result = server.serve_experts(experts, output_tokens=args.tokens)
        note = ""
        if baseline is None:
            baseline = result.total_s
        else:
            note = f"  ({result.total_s / baseline:.1f}x slower than SN40L)"
        print(f"  {platform.name:<12s}: {fmt_time(result.total_s)} "
              f"({100 * result.switch_fraction:.0f}% switching){note}")
    return 0


def _platform_factories():
    from repro.systems.platforms import (
        dgx_a100_platform,
        dgx_h100_platform,
        sn40l_platform,
    )

    return {
        "sn40l": sn40l_platform,
        "dgx-a100": dgx_a100_platform,
        "dgx-h100": dgx_h100_platform,
    }


def _parse_node_counts(value) -> List[int]:
    """``--num-nodes`` accepts one count or a comma list (cluster-bench)."""
    counts = sorted({int(n) for n in str(value).split(",")})
    if any(n < 1 for n in counts):
        raise ValueError(f"node counts must be >= 1, got {value!r}")
    return counts


def _build_stream(args):
    from repro.coe.engine import zipf_request_stream
    from repro.coe.expert import build_samba_coe_library

    library = build_samba_coe_library(args.experts)
    requests = zipf_request_stream(
        library, args.requests, alpha=args.zipf, seed=args.seed,
        prompt_tokens=args.prompt, output_tokens=args.tokens,
    )
    return library, requests


def _tier_caps_from_args(args, library):
    """``--hbm-frac``/``--ddr-frac`` -> ``tier_capacities`` (or None).

    The HBM budget is FRAC x the library working set, floored at the
    largest single expert so at least one expert always fits in HBM.
    ``--ddr-frac`` additionally bounds the DDR tier (spilling the rest
    to NVMe); it is clamped up to the HBM budget so the inclusive
    hierarchy invariant (DDR >= HBM) always holds, and it needs
    ``--hbm-frac`` — an unbounded HBM tier never spills to DDR, so a
    DDR cap alone would be dead configuration.
    """
    frac = getattr(args, "hbm_frac", None)
    ddr_frac = getattr(args, "ddr_frac", None)
    if frac is None:
        if ddr_frac is not None:
            raise ValueError("--ddr-frac needs --hbm-frac: an unbounded "
                             "HBM budget never spills to DDR")
        return None
    if frac <= 0:
        raise ValueError(f"--hbm-frac must be positive, got {frac}")
    working_set = sum(e.weight_bytes for e in library.experts)
    biggest = max(e.weight_bytes for e in library.experts)
    caps = {"hbm": max(int(frac * working_set), biggest)}
    if ddr_frac is not None:
        if ddr_frac <= 0:
            raise ValueError(
                f"--ddr-frac must be positive, got {ddr_frac}")
        caps["ddr"] = max(int(ddr_frac * working_set), caps["hbm"])
    return caps


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.coe.api import ServeConfig, serve
    from repro.coe.engine import POLICIES

    platforms = _platform_factories()
    selected = list(platforms) if args.platform == "all" else [args.platform]
    policies = list(POLICIES) if args.policy == "all" else [args.policy]
    if args.inject_fault:
        print("serve-bench is single-node; faults need cluster-bench or "
              "trace --cluster", file=sys.stderr)
        return 2
    try:
        library, requests = _build_stream(args)
        tier_capacities = _tier_caps_from_args(args, library)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(f"{args.requests} requests over {len(library)} experts "
          f"(Zipf alpha={args.zipf}), {args.tokens} output tokens each"
          + (f", hbm capped at {args.hbm_frac}x working set"
             if tier_capacities else ""))
    header = (f"{'platform':<12s} {'policy':<9s} {'req/s':>8s} {'tok/s':>9s} "
              f"{'p50':>9s} {'p99':>9s} {'batch':>6s} {'hidden':>7s}")
    print(header)
    print("-" * len(header))
    results = []
    for name in selected:
        platform = platforms[name]()
        hosted = platform.max_hosted_experts(
            library.experts[0].weight_bytes,
            reserved_bytes=library.experts[0].weight_bytes,
        )
        if len(library) > hosted:
            print(f"{platform.name:<12s} OOM ({hosted} experts max)")
            continue
        for policy in policies:
            try:
                config = ServeConfig(policy=policy, max_batch=args.max_batch,
                                     window=args.window,
                                     cache_policy=args.cache_policy,
                                     scheduler=args.scheduler,
                                     tier_capacities=tier_capacities,
                                     pipeline_promotions=args.pipelined)
                if getattr(args, "profile", False) and not results:
                    from repro.bench.sweep import profile_point

                    report = profile_point(serve, platform, library,
                                           requests, config)
                else:
                    report = serve(platform, library, requests, config)
            except ValueError as exc:
                print(exc, file=sys.stderr)
                return 2
            print(f"{platform.name:<12s} {policy:<9s} "
                  f"{report.requests_per_second:8.2f} "
                  f"{report.tokens_per_second:9.1f} "
                  f"{fmt_time(report.p50_s):>9s} {fmt_time(report.p99_s):>9s} "
                  f"{report.mean_batch:6.2f} "
                  f"{100 * report.switch_hidden_fraction:6.1f}%")
            results.append(report.to_dict())
    if args.output:
        import json

        payload = {
            "benchmark": "serve_bench",
            "experts": args.experts,
            "requests": args.requests,
            "zipf_alpha": args.zipf,
            "seed": args.seed,
            "cache_policy": args.cache_policy,
            "scheduler": args.scheduler,
            "hbm_frac": args.hbm_frac,
            "ddr_frac": args.ddr_frac,
            "pipelined": args.pipelined,
            "results": results,
        }
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.output}")
    return 0


def _cmd_cluster_bench(args: argparse.Namespace) -> int:
    from repro.coe.api import ServeConfig, serve
    from repro.coe.cluster_engine import CLUSTER_POLICIES

    platforms = _platform_factories()
    if args.platform == "all":
        print("cluster-bench runs one platform; pick --platform",
              file=sys.stderr)
        return 2
    if args.policy == "all":
        print("cluster-bench sweeps --cluster-policy; pick one node "
              "--policy (fifo|affinity|overlap)", file=sys.stderr)
        return 2
    try:
        node_counts = _parse_node_counts(args.num_nodes)
        library, requests = _build_stream(args)
        tier_capacities = _tier_caps_from_args(args, library)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    policies = (list(CLUSTER_POLICIES) if args.cluster_policy == "all"
                else [args.cluster_policy])
    replication = not args.no_replication
    print(f"{args.requests} requests over {len(library)} experts "
          f"(Zipf alpha={args.zipf}), node policy {args.policy}, "
          f"online replication {'on' if replication else 'off'}"
          + (f", faults {args.inject_fault}" if args.inject_fault else ""))
    header = (f"{'nodes':>5s} {'policy':<13s} {'tok/s':>9s} {'scaling':>8s} "
              f"{'imbal':>6s} {'steals':>6s} {'repl':>5s} {'makespan':>9s}")
    print(header)
    print("-" * len(header))
    results = []
    baselines = {}
    for policy in policies:
        for n in node_counts:
            try:
                config = ServeConfig(
                    policy=args.policy, cluster_policy=policy, num_nodes=n,
                    max_batch=args.max_batch, window=args.window,
                    online_replication=replication,
                    faults=args.inject_fault, deadline_s=args.deadline,
                    cache_policy=args.cache_policy,
                    scheduler=args.scheduler,
                    tier_capacities=tier_capacities,
                    pipeline_promotions=args.pipelined,
                )
                if getattr(args, "profile", False) and not results:
                    from repro.bench.sweep import profile_point

                    report = profile_point(serve, platforms[args.platform],
                                           library, requests, config)
                else:
                    report = serve(platforms[args.platform], library, requests,
                                   config)
            except ValueError as exc:
                print(exc, file=sys.stderr)
                return 2
            base = baselines.setdefault(policy, report.tokens_per_second)
            scaling = report.tokens_per_second / base if base > 0 else 0.0
            print(f"{report.num_nodes:5d} {policy:<13s} "
                  f"{report.tokens_per_second:9.1f} {scaling:7.2f}x "
                  f"{report.load_imbalance:6.2f} {report.steals:6d} "
                  f"{report.replications:5d} {fmt_time(report.makespan_s):>9s}")
            if report.crashes or report.rejected:
                print(f"      faults: {report.crashes} crash(es), "
                      f"{report.redispatched_groups} groups re-dispatched, "
                      f"{report.rejected} rejected, availability "
                      f"{report.availability:.3f}, recovery "
                      f"{fmt_time(report.recovery_s)}, goodput "
                      f"{report.goodput_tokens_per_second:.1f} tok/s")
            entry = report.to_dict()
            entry.pop("nodes", None)
            entry["scaling_vs_one_node"] = scaling
            results.append(entry)
    if args.output:
        import json

        payload = {
            "benchmark": "cluster_serving",
            "experts": len(library),
            "requests": args.requests,
            "zipf_alpha": args.zipf,
            "seed": args.seed,
            "node_policy": args.policy,
            "cache_policy": args.cache_policy,
            "scheduler": args.scheduler,
            "hbm_frac": args.hbm_frac,
            "ddr_frac": args.ddr_frac,
            "pipelined": args.pipelined,
            "online_replication": replication,
            "faults": list(args.inject_fault),
            "deadline_s": args.deadline,
            "results": results,
        }
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.output}")
    return 0


def _cmd_serve_live(args: argparse.Namespace) -> int:
    from repro.coe.api import ServeConfig, ServeModeError, serve
    from repro.coe.crosscheck import cross_check
    from repro.coe.expert import build_samba_coe_library
    from repro.load import ArrivalSpec, ArrivalTrace, generate_trace

    platforms = _platform_factories()
    if args.platform == "all":
        print("serve-live runs one platform; pick --platform",
              file=sys.stderr)
        return 2
    if args.inject_fault:
        print("fault injection is sim-only; use cluster-bench",
              file=sys.stderr)
        return 2
    library = build_samba_coe_library(args.experts)
    try:
        if args.replay_trace:
            trace = ArrivalTrace.load(args.replay_trace)
            print(f"replaying {len(trace)} arrivals from "
                  f"{args.replay_trace}")
        else:
            spec = ArrivalSpec(
                process=args.process, rate_rps=args.rate,
                duration_s=args.duration, seed=args.seed,
                zipf_alpha=args.zipf, prompt_tokens=args.prompt,
                output_tokens=args.tokens,
            )
            trace = generate_trace(spec, library)
            print(f"{len(trace)} {args.process} arrivals over "
                  f"{args.duration:g}s at {args.rate:g} req/s")
    except (ValueError, OSError) as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.record_trace:
        trace.save(args.record_trace)
        print(f"recorded trace to {args.record_trace}")
    requests = trace.to_requests(library)
    num_nodes = int(str(args.num_nodes).split(",")[0])
    try:
        config = ServeConfig(
            policy=args.policy, cluster_policy=args.cluster_policy,
            cache_policy=args.cache_policy, num_nodes=num_nodes,
            max_batch=args.max_batch, window=args.window,
            deadline_s=args.deadline, mode="live",
            max_queue=args.max_queue, time_scale=args.time_scale,
            scheduler=args.scheduler,
            tier_capacities=_tier_caps_from_args(args, library),
            pipeline_promotions=args.pipelined,
        )
    except (ServeModeError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    payload: dict
    if args.cross_check:
        result = cross_check(platforms[args.platform], library, requests,
                             config)
        report = result.live_report
        verdict = "MATCH" if result.match else "MISMATCH"
        print(f"sim/live decision cross-check: {verdict} "
              f"({result.decisions} decisions on "
              f"{len(result.streams)} streams)")
        if not result.match:
            print(f"  first divergence: {result.mismatch}", file=sys.stderr)
        payload = {"benchmark": "live_serving",
                   "cross_check": result.to_dict()}
    else:
        report = serve(platforms[args.platform], library, requests, config)
        payload = {"benchmark": "live_serving"}
    print(f"{report.completed_requests}/{report.requests} requests in "
          f"{fmt_time(report.wall_s)} wall ({report.makespan_s:.2f} model-s "
          f"at time_scale {report.time_scale:g})")
    print(f"  goodput {report.goodput_tokens_per_second:.1f} tok/s, "
          f"p50 {fmt_time(report.p50_s)}, p99 {fmt_time(report.p99_s)}, "
          f"shed {report.shed_deadline} deadline + "
          f"{report.shed_backpressure} backpressure, "
          f"drained {report.drained}")
    payload["config"] = config.to_dict()
    payload["report"] = report.to_dict()
    if args.output:
        import json

        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.output}")
    if args.cross_check and not result.match:
        return 1
    return 0


def _cmd_footprint(args: argparse.Namespace) -> int:
    from repro.models.catalog import LLAMA2_7B
    from repro.systems.footprint import dgx_nodes_required, sn40l_nodes_required
    from repro.systems.platforms import dgx_a100_platform, sn40l_platform
    from repro.units import GiB

    expert = LLAMA2_7B.weight_bytes
    reserved = expert + 8 * GiB
    sn = sn40l_nodes_required(sn40l_platform(), args.experts, expert, reserved)
    dgx = dgx_nodes_required(dgx_a100_platform(), args.experts, expert, reserved)
    print(f"{args.experts} Llama2-7B experts at sustained TP8 latency:")
    print(f"  SN40L nodes : {sn}")
    print(f"  DGX nodes   : {dgx}  ({dgx / sn:.0f}x footprint)")
    return 0


def _cmd_intensity(args: argparse.Namespace) -> int:
    from repro.dataflow import fusion
    from repro.dataflow.intensity import (
        GPU_FUSED,
        GPU_UNFUSED,
        SN40L_STREAMING,
        operational_intensity,
    )
    from repro.models.fftconv import monarch_fft_graph

    graph = monarch_fft_graph(m=args.m)
    rows = [
        ("no fusion", operational_intensity(fusion.unfused(graph), GPU_UNFUSED)),
        ("gemm0-mul-transpose", operational_intensity(
            fusion.manual_plan(graph, [["gemm0", "mul", "transpose"], ["gemm1"]]),
            GPU_FUSED)),
        ("fully fused", operational_intensity(
            fusion.streaming_fusion(graph), SN40L_STREAMING)),
    ]
    print(f"Monarch FFT stage (m={args.m}) operational intensity:")
    for name, value in rows:
        print(f"  {name:<20s}: {value:7.1f} FLOPs/byte")
    return 0


def _build_workload(args: argparse.Namespace):
    from repro.models.catalog import get_model
    from repro.models.transformer import decode_graph, prefill_graph, train_graph

    builders = {"prefill": prefill_graph, "decode": decode_graph,
                "train": train_graph}
    cfg = get_model(args.model)
    seq = min(args.seq, cfg.max_seq)
    return builders[args.phase](cfg, args.batch, seq, tp=args.sockets)


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.dataflow import fusion
    from repro.dataflow.visualize import plan_summary

    try:
        graph = _build_workload(args)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    plan = fusion.group_by_prefix(graph)
    print(plan_summary(plan, max_kernels=args.max_kernels))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.cluster:
        return _trace_cluster(args)
    if args.serve:
        return _trace_serve(args)
    if not args.model or not args.phase:
        print("trace: model and phase are required unless --serve or "
              "--cluster is given", file=sys.stderr)
        return 2
    return _trace_plan(args)


def _trace_plan(args: argparse.Namespace) -> int:
    from repro.arch.config import SocketConfig
    from repro.dataflow import fusion
    from repro.obs import write_summary
    from repro.perf.kernel_cost import ExecutionTarget, Orchestration, cost_plan
    from repro.perf.trace import plan_cost_trace, total_duration_s, write_trace

    try:
        graph = _build_workload(args)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    target = ExecutionTarget.from_socket(SocketConfig(), sockets=args.sockets)
    orchestration = (Orchestration.HARDWARE if args.hardware
                     else Orchestration.SOFTWARE)
    cost = cost_plan(fusion.group_by_prefix(graph), target, orchestration)
    events = plan_cost_trace(cost)
    write_trace(events, args.output)
    print(f"wrote {len(events)} events ({fmt_time(total_duration_s(events))}) "
          f"to {args.output}")
    if args.summary:
        write_summary(cost.to_timeline(), args.summary)
        print(f"wrote timeline summary to {args.summary}")
    return 0


def _trace_serve(args: argparse.Namespace) -> int:
    """Trace a seeded serve-bench run: the engine's real sim timeline."""
    from repro.coe.api import ServeConfig, serve
    from repro.obs import write_chrome_trace, write_summary
    from repro.perf.trace import ENGINE_LANES

    if args.platform == "all" or args.policy == "all":
        print("trace runs one configuration; pick a single --platform "
              "and --policy", file=sys.stderr)
        return 2
    if args.inject_fault:
        print("faults need per-node recovery; use trace --cluster",
              file=sys.stderr)
        return 2
    try:
        library, requests = _build_stream(args)
        config = ServeConfig(policy=args.policy, max_batch=args.max_batch,
                             window=args.window,
                             cache_policy=args.cache_policy)
        report = serve(_platform_factories()[args.platform], library,
                       requests, config)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    spans = write_chrome_trace(report.timeline, args.output, lanes=ENGINE_LANES)
    print(f"wrote {spans} spans ({fmt_time(report.makespan_s)} makespan) "
          f"to {args.output}")
    print(f"  {args.policy} on {report.platform}: "
          f"{report.requests_per_second:.2f} req/s, "
          f"{100 * report.switch_hidden_fraction:.1f}% of switch time "
          f"hidden behind execution")
    if args.summary:
        write_summary(report.timeline, args.summary)
        print(f"wrote timeline summary to {args.summary}")
    return 0


def _trace_cluster(args: argparse.Namespace) -> int:
    """Trace a multi-node cluster run: per-node lanes, one shared clock."""
    from repro.coe.api import ServeConfig, serve
    from repro.coe.cluster_engine import cluster_lanes
    from repro.obs import write_chrome_trace, write_summary

    if args.platform == "all" or args.policy == "all":
        print("trace runs one configuration; pick a single --platform "
              "and --policy", file=sys.stderr)
        return 2
    try:
        (num_nodes,) = _parse_node_counts(args.num_nodes)
    except ValueError:
        print(f"trace --cluster needs one node count, got "
              f"{args.num_nodes!r}", file=sys.stderr)
        return 2
    try:
        library, requests = _build_stream(args)
        config = ServeConfig(
            policy=args.policy, cluster_policy=args.cluster_policy,
            num_nodes=num_nodes, max_batch=args.max_batch,
            window=args.window, faults=args.inject_fault,
            deadline_s=args.deadline, cache_policy=args.cache_policy,
        )
        report = serve(_platform_factories()[args.platform], library,
                       requests, config)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    lanes = cluster_lanes(report.num_nodes)
    spans = write_chrome_trace(report.timeline, args.output, lanes=lanes)
    print(f"wrote {spans} spans ({fmt_time(report.makespan_s)} makespan) "
          f"to {args.output}")
    print(f"  {report.num_nodes} nodes, {args.cluster_policy} dispatch: "
          f"{report.tokens_per_second:.1f} tok/s, "
          f"load imbalance {report.load_imbalance:.2f}, "
          f"{report.steals} steals, {report.replications} replications")
    if report.crashes or report.rejected:
        print(f"  faults: {report.crashes} crash(es), "
              f"{report.redispatched_groups} groups re-dispatched, "
              f"{report.rejected} rejected, availability "
              f"{report.availability:.3f}, recovery "
              f"{fmt_time(report.recovery_s)}, goodput "
              f"{report.goodput_tokens_per_second:.1f} tok/s")
    if args.summary:
        write_summary(report.timeline, args.summary)
        print(f"wrote timeline summary to {args.summary}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SN40L / Samba-CoE reproduction toolkit (MICRO 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="SN40L hardware summary").set_defaults(fn=_cmd_info)
    sub.add_parser("models", help="workload catalogue").set_defaults(fn=_cmd_models)

    fusion_p = sub.add_parser("fusion", help="fusion speedup for one workload")
    fusion_p.add_argument("model", help="catalogue name, e.g. llama2-7b")
    fusion_p.add_argument("phase", choices=["prefill", "decode", "train"])
    fusion_p.add_argument("--batch", type=int, default=1)
    fusion_p.add_argument("--seq", type=int, default=4096)
    fusion_p.add_argument("--sockets", type=int, default=8)
    fusion_p.set_defaults(fn=_cmd_fusion)

    coe_p = sub.add_parser("coe", help="CoE serving comparison")
    coe_p.add_argument("--experts", type=int, default=150)
    coe_p.add_argument("--batch", type=int, default=8)
    coe_p.add_argument("--tokens", type=int, default=20)
    coe_p.set_defaults(fn=_cmd_coe)

    # One parent-parser definition for every serving-path subcommand so
    # serve-bench, cluster-bench and trace accept identical flag
    # spellings. Built fresh per subcommand (a factory, not one shared
    # instance): argparse's set_defaults mutates the *shared action
    # objects* of a reused parent, which would leak one subcommand's
    # defaults into the others.
    def serving_parent() -> argparse.ArgumentParser:
        p = argparse.ArgumentParser(add_help=False)
        p.add_argument(
            "--platform", default="sn40l",
            choices=["sn40l", "dgx-a100", "dgx-h100", "all"])
        p.add_argument(
            "--policy", default="overlap",
            choices=["fifo", "affinity", "overlap", "all"],
            help="node scheduling policy")
        p.add_argument(
            "--cluster-policy", default="steal",
            choices=["least_loaded", "affinity", "steal", "all"],
            help="cross-node dispatch policy (cluster paths)")
        p.add_argument(
            "--cache-policy", default="lru",
            choices=["lru", "lfu", "gdsf", "predictive", "lookahead"],
            help="HBM expert-cache eviction policy (belady is offline-"
                 "only; see benchmarks/test_cache_policies.py; lookahead "
                 "ranks victims by next-use distance in the scheduler's "
                 "reordered backlog)")
        p.add_argument(
            "--scheduler", default="fifo",
            choices=["fifo", "expert_reorder"],
            help="admission-time request reordering applied before node "
                 "dispatch (expert_reorder groups by expert to cut "
                 "switch traffic under constrained memory)")
        p.add_argument(
            "--hbm-frac", type=float, default=None, metavar="FRAC",
            help="cap the HBM expert budget at FRAC x the library working "
                 "set (constrained-memory ladder; spills to DDR/NVMe "
                 "via the memory hierarchy)")
        p.add_argument(
            "--ddr-frac", type=float, default=None, metavar="FRAC",
            help="additionally cap the DDR expert budget at FRAC x the "
                 "working set (needs --hbm-frac; clamped up to the HBM "
                 "budget; the remainder lives on NVMe)")
        p.add_argument(
            "--pipelined", action="store_true",
            help="start the next queued group's NVMe->DDR promotion "
                 "while the current group decodes (CoServe-style "
                 "pipelining; needs a bounded DDR tier via --ddr-frac, "
                 "incompatible with --policy overlap)")
        p.add_argument(
            "--num-nodes", "--nodes", dest="num_nodes", default="4",
            metavar="N[,N...]",
            help="node count; cluster-bench accepts a comma-separated sweep")
        p.add_argument("--experts", type=int, default=64)
        p.add_argument("--requests", type=int, default=256)
        p.add_argument("--tokens", type=int, default=20)
        p.add_argument("--prompt", type=int, default=256)
        p.add_argument("--max-batch", type=int, default=8)
        p.add_argument("--window", type=int, default=16)
        p.add_argument("--zipf", type=float, default=1.1)
        p.add_argument("--seed", type=int, default=1234)
        p.add_argument(
            "--inject-fault", action="append", default=[], metavar="SPEC",
            help="deterministic fault on the sim clock (repeatable): NODE:T "
                 "crashes the node at T; also crash:NODE:T, "
                 "slow:NODE:T:DURATION[:MULT], copyfail:NODE:T[:COUNT]")
        p.add_argument(
            "--deadline", type=float, default=None, metavar="SECONDS",
            help="SLO deadline; work that cannot meet it is shed "
                 "lowest-priority first and reported as rejected")
        p.add_argument("-o", "--output", metavar="FILE",
                       help="write results as JSON")
        return p

    serve_p = sub.add_parser("serve-bench", parents=[serving_parent()],
                             help="throughput serving engine benchmark")
    serve_p.add_argument("--profile", action="store_true",
                         help="cProfile the first benchmark point and print "
                              "the top-25 cumulative-time table")
    serve_p.set_defaults(fn=_cmd_serve_bench, platform="all", policy="all",
                         experts=100)

    cluster_p = sub.add_parser(
        "cluster-bench", parents=[serving_parent()],
        help="multi-node scaling curve: tokens/s and load imbalance vs nodes",
    )
    cluster_p.add_argument("--node-policy", dest="policy",
                           choices=["fifo", "affinity", "overlap"],
                           help=argparse.SUPPRESS)  # legacy alias of --policy
    cluster_p.add_argument("--no-replication", action="store_true",
                           help="disable online hot-expert replication")
    cluster_p.add_argument("--profile", action="store_true",
                           help="cProfile the first benchmark point and print "
                                "the top-25 cumulative-time table")
    cluster_p.set_defaults(fn=_cmd_cluster_bench, cluster_policy="all",
                           num_nodes="1,2,4,8")

    live_p = sub.add_parser(
        "serve-live", parents=[serving_parent()],
        help="wall-clock serving over an open-loop arrival trace, with an "
             "optional sim/live decision cross-check",
    )
    live_p.add_argument(
        "--process", default="poisson",
        choices=["poisson", "diurnal", "bursty", "tenants"],
        help="arrival process of the generated open-loop workload")
    live_p.add_argument("--rate", type=float, default=100.0,
                        help="mean arrival rate (requests/second)")
    live_p.add_argument("--duration", type=float, default=10.0,
                        help="trace duration in model seconds")
    live_p.add_argument(
        "--time-scale", type=float, default=None, metavar="S",
        help="wall seconds per model second (1.0 = real time; small "
             "values fast-forward the trace)")
    live_p.add_argument("--max-queue", type=int, default=None, metavar="N",
                        help="per-node admission queue bound (backpressure)")
    live_p.add_argument("--record-trace", metavar="FILE",
                        help="save the generated arrival trace as JSON")
    live_p.add_argument("--replay-trace", metavar="FILE",
                        help="replay a previously recorded arrival trace")
    live_p.add_argument(
        "--cross-check", action="store_true",
        help="also run the sim backend on the same trace and diff every "
             "policy decision (exit 1 on mismatch)")
    # Live mode rejects overlap/steal (sim-only), so the shared parent's
    # defaults are overridden with the live-valid equivalents.
    live_p.set_defaults(fn=_cmd_serve_live, policy="affinity",
                        cluster_policy="least_loaded", num_nodes="1")

    foot_p = sub.add_parser("footprint", help="nodes required for a CoE")
    foot_p.add_argument("--experts", type=int, default=850)
    foot_p.set_defaults(fn=_cmd_footprint)

    int_p = sub.add_parser("intensity", help="Table I intensity analysis")
    int_p.add_argument("--m", type=int, default=1024)
    int_p.set_defaults(fn=_cmd_intensity)

    def add_workload_args(p):
        p.add_argument("model", help="catalogue name, e.g. llama2-7b")
        p.add_argument("phase", choices=["prefill", "decode", "train"])
        p.add_argument("--batch", type=int, default=1)
        p.add_argument("--seq", type=int, default=2048)
        p.add_argument("--sockets", type=int, default=8)

    plan_p = sub.add_parser("plan", help="print the fused kernel plan")
    add_workload_args(plan_p)
    plan_p.add_argument("--max-kernels", type=int, default=8)
    plan_p.set_defaults(fn=_cmd_plan)

    trace_p = sub.add_parser(
        "trace", parents=[serving_parent()],
        help="write a Perfetto/Chrome trace of a kernel schedule or a "
             "serve-bench run",
    )
    trace_p.add_argument("model", nargs="?",
                         help="catalogue name, e.g. llama2-7b (plan mode)")
    trace_p.add_argument("phase", nargs="?",
                         choices=["prefill", "decode", "train"])
    trace_p.add_argument("--batch", type=int, default=1)
    trace_p.add_argument("--seq", type=int, default=2048)
    trace_p.add_argument("--sockets", type=int, default=8)
    trace_p.add_argument("--summary", metavar="FILE",
                         help="also write a JSON timeline summary")
    trace_p.add_argument("--hardware", action="store_true",
                         help="hardware-orchestrated launches (plan mode)")
    trace_p.add_argument("--serve", action="store_true",
                         help="trace a throughput serve-bench run instead "
                              "of a compiled plan")
    trace_p.add_argument("--cluster", action="store_true",
                         help="trace a multi-node cluster run with per-node "
                              "lanes instead of a compiled plan")
    trace_p.set_defaults(fn=_cmd_trace, output="schedule_trace.json",
                         experts=40, requests=64)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
