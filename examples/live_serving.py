#!/usr/bin/env python
"""Live wall-clock CoE serving: open-loop arrivals, streamed tokens.

The policy/clock split lets the same `ServeConfig` run on the
discrete-event simulator or on a real asyncio event loop. This example
serves a 10-model-second Poisson trace in live mode — requests are
admitted when they *arrive*, per-node queues are bounded, and every
decode token is delivered through a streaming callback as its step
completes — then cross-checks that the live run made byte-identical
policy decisions to a simulated run of the same trace.

`TIME_SCALE` fast-forwards the wall clock (0.05 wall seconds per model
second compresses the 10-second trace into ~half a second); set it to
1.0 to watch the run unfold in real time.

Run:  python examples/live_serving.py
"""

import repro
from repro.coe import build_samba_coe_library
from repro.coe.crosscheck import cross_check
from repro.load import ArrivalSpec, generate_trace
from repro.systems import sn40l_platform

NUM_EXPERTS = 24
NUM_NODES = 2
RATE_RPS = 20.0
DURATION_S = 10.0
TIME_SCALE = 0.05  # wall seconds per model second (1.0 = real time)


def main() -> None:
    library = build_samba_coe_library(NUM_EXPERTS)
    config = repro.ServeConfig(
        policy="affinity",
        cluster_policy="least_loaded",
        num_nodes=NUM_NODES,
        mode="live",
        load=ArrivalSpec(
            process="poisson", rate_rps=RATE_RPS, duration_s=DURATION_S,
            zipf_alpha=1.1, seed=42,
        ),
        time_scale=TIME_SCALE,
        max_queue=64,
        drain_timeout_s=30.0,
    )

    # Stream: one callback per decode token, as its step completes on
    # the wall clock. A real server would push these to the client.
    streamed = []

    def on_token(event):
        streamed.append(event)
        if event.index == 0:
            print(f"  [{event.time_s:7.3f}s] request {event.request_id:3d} "
                  f"first token from {event.expert} on {event.node}")

    print(f"live-serving a {DURATION_S:.0f} model-second Poisson trace "
          f"({RATE_RPS:.0f} req/s, {NUM_NODES} nodes, "
          f"time_scale={TIME_SCALE})...")
    server = repro.build_server(
        sn40l_platform, library, config, token_callback=on_token
    )
    report = server.serve(
        generate_trace(config.load, library).to_requests(library)
    )

    print(f"\ncompleted {report.completed_requests}/{report.requests} "
          f"requests in {report.wall_s:.2f} wall-s "
          f"({report.makespan_s:.2f} model-s); drained={report.drained}")
    print(f"  goodput  {report.goodput_tokens_per_second:8.1f} tok/s "
          f"({report.tokens_streamed} tokens streamed)")
    print(f"  latency  p50 {report.p50_s * 1e3:7.1f} ms   "
          f"p99 {report.p99_s * 1e3:7.1f} ms")
    print(f"  shed     {report.shed_deadline} deadline, "
          f"{report.shed_backpressure} backpressure")

    # The correctness artifact: replay the same arrivals through both
    # clocks and diff every recorded policy decision.
    trace = generate_trace(config.load, library)
    result = cross_check(
        sn40l_platform, library, trace.to_requests(library), config
    )
    verdict = "MATCH" if result.match else f"MISMATCH: {result.mismatch}"
    print(f"\nsim/live decision cross-check: {verdict} "
          f"({result.decisions} decisions on {len(result.streams)} streams)")


if __name__ == "__main__":
    main()
