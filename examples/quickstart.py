#!/usr/bin/env python
"""Quickstart: compile and time a Llama2-7B decode step on the SN40L.

Walks the library's core loop end-to-end:

1. build the operator graph of one autoregressive decode step,
2. compile it under three policies (unfused / conventional / streaming),
3. time each on an eight-socket SN40L node under both orchestration
   modes,
4. print the fusion and orchestration speedups — the paper's Figure 10
   story in miniature.

Run:  python examples/quickstart.py
"""

from repro import Orchestration, Session, compile_model
from repro.dataflow import fusion, kernel_call_ratio
from repro.models import LLAMA2_7B, decode_graph

SOCKETS = 8


def main() -> None:
    graph = decode_graph(LLAMA2_7B, batch=1, context=2048, tp=SOCKETS)
    print(f"Workload: {graph.summary()}")
    print(f"KV cache per token: {LLAMA2_7B.kv_bytes_per_token() / 1024:.0f} KiB")
    print()

    session = Session(sockets=SOCKETS)
    results = {}
    for policy in ("unfused", "conventional", "streaming"):
        model = compile_model(graph, sockets=SOCKETS, policy=policy)
        for orch in (Orchestration.SOFTWARE, Orchestration.HARDWARE):
            run = session.run(model, orch)
            results[(policy, orch)] = run
            print(
                f"{policy:>12s} + {orch.value:>8s}: "
                f"{run.total_s * 1e3:8.3f} ms/token "
                f"({run.num_launches} kernel launches)"
            )

    unfused_so = results[("unfused", Orchestration.SOFTWARE)]
    fused_so = results[("streaming", Orchestration.SOFTWARE)]
    fused_ho = results[("streaming", Orchestration.HARDWARE)]
    print()
    print(f"Fusion speedup (SO):            {unfused_so.total_s / fused_so.total_s:.2f}x")
    print(f"Hardware orchestration speedup: {fused_so.total_s / fused_ho.total_s:.2f}x")
    print(f"Total speedup:                  {unfused_so.total_s / fused_ho.total_s:.2f}x")

    layer_plan = fusion.group_by_prefix(graph)
    print(f"Kernel-call reduction (per-layer fusion): "
          f"{kernel_call_ratio(graph, layer_plan):.1f}x")


if __name__ == "__main__":
    main()
