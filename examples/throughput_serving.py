#!/usr/bin/env python
"""Drain a backlog of CoE requests as fast as the hardware allows.

Walks the three throughput levers of `repro.coe.engine` on a skewed
(Zipf) request stream over 100 Llama2-7B experts:

1. `fifo`     — arrival order; only natural same-expert runs batch.
2. `affinity` — bounded-window reordering grows the batched groups.
3. `overlap`  — double-buffered expert activation hides DDR->HBM copies
                behind the previous group's execution.

Run:  python examples/throughput_serving.py
"""

import repro
from repro.coe import NodePolicy, build_samba_coe_library
from repro.coe.engine import zipf_request_stream
from repro.systems import dgx_a100_platform, sn40l_platform

NUM_EXPERTS = 100
NUM_REQUESTS = 200


def main() -> None:
    library = build_samba_coe_library(NUM_EXPERTS)
    requests = zipf_request_stream(
        library, NUM_REQUESTS, alpha=1.1, seed=42, output_tokens=20
    )
    hot = max(set(r.expert.name for r in requests),
              key=lambda n: sum(r.expert.name == n for r in requests))
    print(f"{NUM_REQUESTS} requests over {NUM_EXPERTS} experts "
          f"(hottest: {hot})\n")

    for make_platform in (sn40l_platform, dgx_a100_platform):
        print(f"--- {make_platform().name} ---")
        reports = {
            policy: repro.serve(make_platform, library, requests,
                                repro.ServeConfig(policy=policy))
            for policy in NodePolicy
        }
        fifo = reports[NodePolicy.FIFO]
        for policy in NodePolicy:
            report = reports[policy]
            speedup = report.requests_per_second / fifo.requests_per_second
            print(
                f"  {policy:<9s} {report.requests_per_second:7.2f} req/s "
                f"({speedup:4.2f}x)  p50 {report.p50_s * 1e3:8.1f} ms  "
                f"p99 {report.p99_s * 1e3:8.1f} ms  "
                f"mean batch {report.mean_batch:.2f}  "
                f"switch hidden {100 * report.switch_hidden_fraction:5.1f}%"
            )
        hidden = reports[NodePolicy.OVERLAP]
        print(
            f"  overlap hid {hidden.hidden_switch_s * 1e3:.0f} ms of "
            f"{hidden.switch_s * 1e3:.0f} ms switch time behind execution, "
            f"with {hidden.speculative_prefetches} speculative prefetches\n"
        )


if __name__ == "__main__":
    main()
