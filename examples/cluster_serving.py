#!/usr/bin/env python
"""Scale a CoE across nodes: sharding, stealing, online replication.

The paper (Section III-B) motivates the single-node SN40L by the load
balancing pain of scale-out CoE serving. This example measures that
pain — and its mitigation — through the unified `repro.serve` entry
point: one throughput engine per node on a shared simulated clock,
Zipf-skewed traffic, and three cluster policies:

1. `least_loaded` — static owner dispatch; the hot expert's node grinds
   while its neighbours idle.
2. `affinity`     — same, but same-expert runs extend on their node.
3. `steal`        — idle nodes steal queued groups they can serve, and
   replicate the hottest queued expert (paying the DDR->HBM copy on the
   sim clock) when they can't.

Run:  python examples/cluster_serving.py
"""

import repro
from repro.coe import ClusterPolicy, build_samba_coe_library
from repro.coe.engine import zipf_request_stream
from repro.systems import sn40l_platform

NUM_EXPERTS = 64
NUM_REQUESTS = 256
NODE_COUNTS = (1, 2, 4, 8)


def main() -> None:
    library = build_samba_coe_library(NUM_EXPERTS)
    requests = zipf_request_stream(
        library, NUM_REQUESTS, alpha=1.1, seed=1234, output_tokens=20
    )
    print(f"{NUM_REQUESTS} Zipf-1.1 requests over {NUM_EXPERTS} experts, "
          f"SN40L nodes\n")

    for policy in ClusterPolicy:
        print(f"--- {policy} ---")
        base = None
        for n in NODE_COUNTS:
            # n == 1 gets the single-node engine (an EngineReport with no
            # cluster columns); n > 1 gets the cluster engine.
            config = repro.ServeConfig(num_nodes=n, cluster_policy=policy)
            report = repro.serve(sn40l_platform, library, requests, config)
            if base is None:
                base = report.tokens_per_second
            line = (f"  {n} node(s): {report.tokens_per_second:8.1f} tok/s "
                    f"({report.tokens_per_second / base:4.2f}x vs 1 node)")
            if n > 1:
                line += (f"  imbalance {report.load_imbalance:4.2f}  "
                         f"steals {report.steals:3d}  "
                         f"replications {report.replications:2d}")
            print(line)
        print()

    config = repro.ServeConfig(num_nodes=8, cluster_policy=ClusterPolicy.STEAL)
    report = repro.serve(sn40l_platform, library, requests, config)
    busiest = max(report.nodes, key=lambda s: s.busy_s)
    print(f"8-node steal run: {report.groups} groups, makespan "
          f"{report.makespan_s * 1e3:.0f} ms; busiest node {busiest.name} "
          f"computes {busiest.busy_s * 1e3:.0f} ms and hid "
          f"{busiest.hidden_switch_s * 1e3:.0f} ms of expert switching "
          f"behind execution.")
    print("Export the per-node timeline with: "
          "python -m repro trace --cluster -o cluster.json")
    print("Crash a node mid-run with: examples/fault_tolerance.py")


if __name__ == "__main__":
    main()
