#!/usr/bin/env python
"""Serve a trillion-parameter Composition of Experts on one SN40L node.

Builds Samba-CoE (150 Llama2-7B experts plus a router), routes a batch of
real prompts to domain experts, and serves them through the three-tier
memory system: DDR holds all experts, HBM LRU-caches the hot ones, and the
runtime reports the switch/execute latency split. The same requests are
then replayed on a DGX-A100 model for the paper's comparison.

Run:  python examples/coe_serving.py
"""

from repro.coe import ExpertServer, Router, build_samba_coe_library
from repro.systems import dgx_a100_platform, sn40l_platform

PROMPTS = [
    "Write a python function that merges two sorted lists",
    "Solve the integral of x * exp(x) dx",
    "Translate 'good morning, friend' into Japanese",
    "Summarize the key points of the attached meeting notes, tldr",
    "What treatment options exist for this diagnosis?",
    "Draft a contract clause limiting liability for data loss",
    "Explain the chemistry of this reaction step by step",
    "Write a short story about a lighthouse keeper",
]


def serve_on(platform_name: str, platform, library) -> None:
    server = ExpertServer(platform, library)
    print(f"--- {platform_name} ---")
    result = server.serve_prompts(PROMPTS, output_tokens=20, prompt_tokens=256)
    for request in result.requests:
        print(
            f"  {request.expert:<28s} switch {request.switch_s * 1e3:7.1f} ms   "
            f"execute {request.execute_s * 1e3:6.1f} ms"
        )
    print(
        f"  batch total: {result.total_s * 1e3:8.1f} ms "
        f"({100 * result.switch_fraction:.0f}% switching)"
    )
    stats = server.runtime.stats
    print(
        f"  runtime: {stats.requests} activations, "
        f"{stats.hits} HBM hits, {stats.bytes_up / 2**30:.1f} GiB copied up\n"
    )


def main() -> None:
    library = build_samba_coe_library(150)
    print(
        f"Samba-CoE: {len(library)} experts, "
        f"{library.total_params / 1e12:.2f}T total parameters, "
        f"{library.total_weight_bytes / 2**40:.2f} TiB of weights\n"
    )

    router = Router(library)
    print("Routing decisions:")
    for decision in router.route_batch(PROMPTS):
        print(f"  [{decision.domain:>13s}] {decision.prompt[:55]}")
    print()

    serve_on("SN40L node (experts in accelerator-local DDR)",
             sn40l_platform(), library)
    serve_on("DGX A100 (experts overflow to host DRAM)",
             dgx_a100_platform(), library)


if __name__ == "__main__":
    main()
