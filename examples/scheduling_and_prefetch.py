#!/usr/bin/env python
"""Serving-layer optimisations on top of the three-tier memory system.

The paper's CoE runtime serves requests FIFO with an LRU expert cache.
This example layers on the two optimisations the architecture enables
(see repro.coe.scheduling):

1. expert-affinity batching — interleaved user sessions thrash an LRU
   cache; regrouping same-expert requests inside a bounded window turns
   the thrash into runs of HBM hits,
2. speculative prefetch — conversational traffic repeats the same expert
   in bursts, so a recency/frequency predictor can start the DDR->HBM
   copy during the router's forward pass and hide the switch.

Run:  python examples/scheduling_and_prefetch.py
"""

import random

from repro.coe import ExpertServer, build_samba_coe_library
from repro.coe.scheduling import (
    Request,
    affinity_schedule,
    fifo_schedule,
    serve_schedule,
    serve_with_prefetch,
)
from repro.systems import sn40l_platform
from repro.units import GiB


def make_server(library, cache_slots: int) -> ExpertServer:
    platform = sn40l_platform()
    budget = cache_slots * library.experts[0].weight_bytes + 1 * GiB
    return ExpertServer(platform, library,
                     reserved_hbm_bytes=platform.hbm_capacity_bytes - budget)


def main() -> None:
    library = build_samba_coe_library(80)

    # Twelve concurrent user sessions, each pinned to one expert, arriving
    # round-robin — the worst case for an 8-slot LRU cache.
    sessions = [library.experts[i * 6] for i in range(12)]
    requests = [
        Request(turn * len(sessions) + user, expert)
        for turn in range(10)
        for user, expert in enumerate(sessions)
    ]

    print("12 interleaved sessions, 8-expert HBM cache, 120 requests:")
    for name, schedule in (
        ("fifo", fifo_schedule(requests)),
        ("affinity (window=24)", affinity_schedule(requests, window=24)),
        ("affinity (window=60)", affinity_schedule(requests, window=60)),
    ):
        server = make_server(library, cache_slots=8)
        outcome = serve_schedule(server, schedule, name, output_tokens=10)
        print(
            f"  {name:<22s}: {outcome.total_s:6.2f} s total, "
            f"{outcome.switches:3d} switches, "
            f"{100 * outcome.hit_rate:4.1f}% HBM hit rate"
        )

    # Multi-stage expert workflows: "outputs from one expert determine
    # which expert(s) to execute next" (paper Section I). Requests chain
    # code -> science -> writing etc., with occasional random hops.
    rng = random.Random(7)
    chains = [
        [library.experts[0], library.experts[6], library.experts[7]],
        [library.experts[2], library.experts[9]],
    ]
    stream = []
    while len(stream) < 120:
        if rng.random() < 0.85:
            stream.extend(rng.choice(chains))
        else:
            stream.append(rng.choice(library.experts[:20]))
    stream = stream[:120]

    print("\nSpeculative prefetch on workflow-chained traffic:")
    server = make_server(library, cache_slots=2)
    outcome = serve_with_prefetch(server, stream, output_tokens=10)
    print(f"  predictor accuracy : {100 * outcome.predictor_accuracy:.1f}%")
    print(f"  switch time hidden : {outcome.hidden_switch_s * 1e3:.0f} ms")
    print(f"  end-to-end speedup : {outcome.speedup:.3f}x over sequential")


if __name__ == "__main__":
    main()
