#!/usr/bin/env python
"""The SN40L compiler's memory manager, step by step (paper Section V-A).

Shows the three mechanisms on a real model:

1. static garbage collection — symbols with disjoint lifetimes share
   device addresses, shrinking a llama2-7b prefill's activation footprint
   by an order of magnitude versus naive allocation,
2. HBM-first placement with bandwidth-ranked spilling — under a tight
   HBM budget, low-reuse activations spill to DDR while weights stay,
3. the CoE runtime's LRU expert cache with read-only skip-copyback.

Run:  python examples/memory_planning.py
"""

from repro.coe import CoERuntime, build_samba_coe_library
from repro.core.compile import build_symbols
from repro.dataflow import fusion
from repro.memory import peak_live_bytes, plan_memory
from repro.memory.tiers import TierKind
from repro.models import LLAMA2_7B, prefill_graph
from repro.units import GiB, fmt_bytes


def main() -> None:
    graph = prefill_graph(LLAMA2_7B, batch=1, seq=4096, tp=8)
    plan = fusion.group_by_prefix(graph)
    symbols = build_symbols(plan)

    total = sum(s.size_bytes for s in symbols)
    weights = sum(s.size_bytes for s in symbols if s.is_weight)
    peak = peak_live_bytes(symbols)
    print(f"llama2-7b prefill, per-layer fused: {len(symbols)} device symbols")
    print(f"  naive (no reuse) footprint : {fmt_bytes(total)}")
    print(f"  weights (always resident)  : {fmt_bytes(weights)}")
    print(f"  peak live (lower bound)    : {fmt_bytes(peak)}")

    memory = plan_memory(symbols, hbm_capacity_bytes=64 * GiB * 8,
                         ddr_capacity_bytes=12 * 1024 * GiB)
    print(f"  planned HBM extent         : {fmt_bytes(memory.extent(TierKind.HBM))} "
          f"(static GC reclaims {fmt_bytes(total - memory.extent(TierKind.HBM))})")
    print(f"  spilled symbols            : {len(memory.spilled)}\n")

    tight_budget = int((weights + 0.1 * GiB))
    tight = plan_memory(symbols, hbm_capacity_bytes=tight_budget,
                        ddr_capacity_bytes=12 * 1024 * GiB)
    spilled_weights = sum(
        1 for s in tight.spilled if tight.placements[s].symbol.is_weight
    )
    print(f"Under a tight {fmt_bytes(tight_budget)} HBM budget:")
    print(f"  spilled {len(tight.spilled)} symbols to DDR "
          f"({spilled_weights} of them weights)")
    print(f"  extra DDR traffic: {fmt_bytes(tight.spill_traffic_bytes)}\n")

    library = build_samba_coe_library(6)
    runtime = CoERuntime(
        hbm_budget_bytes=3 * library.experts[0].weight_bytes,
        upgrade_time=lambda b: b / 1.05e12,
    )
    print("CoE runtime: 3-expert HBM cache, 6 experts requested round-robin:")
    for expert in library.experts + library.experts[:2]:
        event = runtime.activate(expert)
        action = "hit " if event.hit else f"copy {event.time_s * 1e3:5.1f} ms"
        evicted = f", evicted {', '.join(event.evicted)}" if event.evicted else ""
        print(f"  {expert.name:<22s} {action}{evicted}")
    stats = runtime.stats
    print(f"  totals: {stats.hits}/{stats.requests} hits, "
          f"{fmt_bytes(stats.bytes_up)} copied up, "
          f"{fmt_bytes(stats.bytes_down)} copied back "
          f"(read-only weights skip copy-back)")


if __name__ == "__main__":
    main()
