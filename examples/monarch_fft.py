#!/usr/bin/env python
"""The paper's Figure 3 / Table I walkthrough: fusing a Monarch FFT stage.

Reproduces the whole argument of paper Section III-A on one example:

1. build the Gemm0 -> Mul -> Transpose -> Gemm1 graph,
2. show what each fusion policy does with it (and where GPU-style fusion
   must break),
3. compute operational intensity at each fusion level and place it on an
   A100 roofline (Table I),
4. spatially place the fully fused kernel on SN40L PCUs/PMUs and validate
   the analytic pipeline time against the discrete-event simulator,
5. run the same dataflow *numerically* through the PCU functional model
   and check it against numpy.

Run:  python examples/monarch_fft.py
"""

import numpy as np

from repro.arch.pcu import PCU
from repro.dataflow import (
    GPU_FUSED,
    GPU_UNFUSED,
    SN40L_STREAMING,
    analyze_pipeline,
    fusion,
    operational_intensity,
    place_kernel,
    simulate,
)
from repro.models.fftconv import monarch_fft_graph, monarch_reference
from repro.perf import Roofline


def main() -> None:
    graph = monarch_fft_graph(m=1024)
    print(f"Graph: {graph.summary()}\n")

    print("Fusion policies:")
    for name, plan in [
        ("unfused", fusion.unfused(graph)),
        ("conventional (GPU-style)", fusion.conventional_fusion(graph)),
        ("streaming dataflow", fusion.streaming_fusion(graph)),
    ]:
        groups = [" + ".join(op.name for op in k.ops) for k in plan.kernels]
        print(f"  {name:<26s}: {plan.num_kernels} kernels: {groups}")
    print()

    a100 = Roofline("A100", peak_flops=312e12, mem_bandwidth=2.039e12)
    print(f"Table I (A100 ridge = {a100.ridge_point:.0f} FLOPs/byte):")
    levels = [
        ("No fusion", fusion.unfused(graph), GPU_UNFUSED, 39.5),
        ("Gemm0 - Mul - Transpose",
         fusion.manual_plan(graph, [["gemm0", "mul", "transpose"], ["gemm1"]]),
         GPU_FUSED, 102.6),
        ("Fully spatially fused", fusion.streaming_fusion(graph),
         SN40L_STREAMING, 410.4),
    ]
    for name, plan, model, paper in levels:
        intensity = operational_intensity(plan, model)
        bound = "memory-bound" if a100.is_memory_bound(intensity) else "compute-bound"
        print(f"  {name:<26s} paper {paper:6.1f}   ours {intensity:6.1f}   {bound}")
    print()

    kernel = fusion.streaming_fusion(graph).kernels[0]
    placement = place_kernel(kernel)
    print("Spatial placement of the fused kernel:")
    for stage in placement.stages:
        print(f"  stage {stage.op_name:<8s} -> {stage.pcus:4d} PCUs")
    for buf in placement.buffers:
        print(f"  buffer {buf.tensor_name:<7s} -> {buf.pmus:4d} PMUs")

    estimate = analyze_pipeline(kernel, placement, num_tiles=64)
    simulated = simulate(estimate)
    print(f"\nPipeline model: analytic {estimate.total_s * 1e6:.1f} us, "
          f"event-simulated {simulated * 1e6:.1f} us "
          f"(bottleneck: {estimate.bottleneck.op_name})\n")

    rng = np.random.default_rng(0)
    m = 32
    x, f0, tw, f1 = (rng.standard_normal((m, m)).astype(np.float32) for _ in range(4))
    pcu = PCU()
    y, _ = pcu.systolic_matmul(f0, x)
    z, _ = pcu.simd_map(y, lambda v: v)  # stream through the SIMD path
    z = tw * z
    out, _ = pcu.systolic_matmul(f1, z.T)
    expected = monarch_reference(x, f0, tw, f1)
    print(f"Functional check (PCU pipeline vs numpy): "
          f"max |err| = {np.abs(out - expected).max():.2e}")


if __name__ == "__main__":
    main()
