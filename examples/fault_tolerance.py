#!/usr/bin/env python
"""Crash a node mid-run and watch the cluster absorb it.

Fault tolerance is the difference between a benchmark and a serving
system. This example drives the same 8-node Zipf-skewed workload twice
through `repro.serve` — once clean, once with a deterministic fault
schedule that kills a node a quarter of the way in and slows another —
and compares goodput, availability and recovery time.

Everything happens on the simulated clock, so the run is exactly
reproducible: the crash lands at the same instant every time, the
heartbeat sweep detects it at the same beat, and the survivors re-host
orphaned experts (paying the DDR->HBM copy) and re-execute the dead
node's in-flight and queued groups exactly once.

Run:  python examples/fault_tolerance.py
"""

import repro
from repro.coe import build_samba_coe_library
from repro.coe.engine import zipf_request_stream
from repro.systems import sn40l_platform

NUM_EXPERTS = 64
NUM_REQUESTS = 256
NUM_NODES = 8


def main() -> None:
    library = build_samba_coe_library(NUM_EXPERTS)
    requests = zipf_request_stream(
        library, NUM_REQUESTS, alpha=1.1, seed=1234, output_tokens=20
    )

    clean = repro.serve(
        sn40l_platform, library, requests,
        repro.ServeConfig(num_nodes=NUM_NODES),
    )
    crash_at = 0.25 * clean.makespan_s

    faulty = repro.serve(
        sn40l_platform, library, requests,
        repro.ServeConfig(
            num_nodes=NUM_NODES,
            faults=[
                f"crash:node3:{crash_at:.6f}",
                f"slow:node5:{0.1 * clean.makespan_s:.6f}"
                f":{0.2 * clean.makespan_s:.6f}:2.0",
            ],
        ),
    )

    print(f"{NUM_REQUESTS} Zipf-1.1 requests over {NUM_EXPERTS} experts, "
          f"{NUM_NODES} SN40L nodes\n")
    print(f"clean run : {clean.tokens_per_second:8.1f} tok/s, "
          f"makespan {clean.makespan_s * 1e3:.0f} ms")
    print(f"faulty run: {faulty.goodput_tokens_per_second:8.1f} tok/s "
          f"goodput, makespan {faulty.makespan_s * 1e3:.0f} ms")
    retention = faulty.goodput_tokens_per_second / clean.tokens_per_second
    print(f"  goodput retention  {100 * retention:5.1f}%")
    print(f"  availability       {faulty.availability:.3f}")
    print(f"  recovery time      {faulty.recovery_s * 1e3:.2f} ms "
          f"(crash -> last orphan re-hosted)")
    print(f"  re-dispatched      {faulty.redispatched_groups} group(s) "
          f"from the dead node, {faulty.promotions} expert(s) promoted")

    dead = next(n for n in faulty.nodes if not n.alive)
    print(f"\n{dead.name} crashed at {dead.crashed_at * 1e3:.1f} ms; "
          f"its faults lane records the outage:")
    for span in faulty.timeline.spans():
        if span.lane.endswith("/faults"):
            print(f"  {span.lane:<14s} {span.name:<16s} "
                  f"[{span.start_s * 1e3:7.1f}, {span.end_s * 1e3:7.1f}] ms")
    print("\nExport the full trace with: python -m repro trace --cluster "
          "--inject-fault node3:%.3f -o faults.json" % crash_at)


if __name__ == "__main__":
    main()
