#!/usr/bin/env python
"""Inside the RDN: flow routing, multicast, and stream reordering.

Demonstrates the on-chip network mechanics of paper Section IV-C on a
small switch mesh:

1. MPLS-like static flow routing — per-switch flow tables with local flow
   IDs relabelled at every hop (the SN40L fix for SN10's global flow-ID
   bottleneck),
2. hardware multicast through a shared tree,
3. many-to-one streams reassembled in order via sequence IDs,
4. credit-based backpressure in a streamed pipeline, and why throttling
   bursty producers helps (paper Section VII).

Run:  python examples/rdn_routing.py
"""

from repro.arch.rdn import Mesh, Packet, ReorderBuffer
from repro.sim.streams import Pipeline, bursty_stage, uniform_stage


def main() -> None:
    mesh = Mesh(8, 8)
    print("Static multicast flow from (0,0) to three consumers:")
    flow = mesh.program_route((0, 0), [(6, 1), (3, 5), (0, 7)])
    for coord, packet in mesh.send_flow(Packet(payload="tile#0"), (0, 0), flow):
        print(f"  delivered to {coord} after {packet.hops} hops "
              f"(local flow id {packet.flow_id})")
    fork = mesh.switches[(3, 0)]
    print(f"  fork switch (3,0) uses {fork.flows_used} flow-table entry "
          f"(shared tree, not one per destination)\n")

    print("Flow IDs are switch-local (MPLS-like relabelling):")
    fid_a = mesh.program_route((7, 7), [(7, 6)])
    fid_b = mesh.program_route((5, 7), [(5, 6)])
    print(f"  two disjoint flows allocated local IDs {fid_a} and {fid_b}\n")

    print("Many-to-one with sequence-ID reordering:")
    rob = ReorderBuffer()
    arrivals = [3, 0, 2, 1, 5, 4]
    released = []
    for seq in arrivals:
        released += [p.sequence_id for p in rob.push(Packet(payload=seq, sequence_id=seq))]
    print(f"  arrival order : {arrivals}")
    print(f"  release order : {released}\n")

    print("Bursty producer vs throttled producer (16-tile stream):")
    bursty = Pipeline([
        bursty_stage("producer", fast_time=0.2, slow_time=3.0, burst_period=4),
        uniform_stage("consumer", 1.0),
    ])
    throttled = Pipeline([
        uniform_stage("producer", 0.9),  # throttled to the consumer's rate
        uniform_stage("consumer", 1.0),
    ])
    t_bursty = bursty.run(16)
    t_throttled = throttled.run(16)
    print(f"  bursty   : {t_bursty:5.1f} time units "
          f"({bursty.stages[0].stats.stalled_s:.1f} stalled)")
    print(f"  throttled: {t_throttled:5.1f} time units")


if __name__ == "__main__":
    main()
