#!/usr/bin/env python
"""Observability: traces, plans, metrics, and hotspot triage.

The paper's "lessons learned" (Section VII) are about *seeing* what a
dataflow program does: static bandwidth models, performance counters, and
congestion/bank-conflict triage. This example tours the library's
observability surface on one workload:

1. render the fused kernel plan (stages, folded ops, stage buffers),
2. statically check the decode kernel's bandwidth feasibility,
3. write a Chrome trace of the kernel schedule (open in Perfetto),
4. serve a CoE batch and report SLO metrics (p50/p99, tokens/s),
5. run the throughput engine and export its sim-time span timeline,
   showing how much expert-switch time hid behind compute,
6. synthesise performance counters from a congested mesh placement and
   run the paper's two-bucket triage.

Run:  python examples/observability.py
"""

from repro.arch.config import RDNConfig, SocketConfig
from repro.arch.perfcounters import diagnose
from repro.arch.rdn import Mesh
from repro.coe import ExpertServer, build_samba_coe_library, metrics_of
from repro.coe.engine import ServingEngine, zipf_request_stream
from repro.dataflow import fusion
from repro.dataflow.bandwidth import Channel, analyze_kernel_bandwidth
from repro.dataflow.visualize import plan_summary
from repro.models import LLAMA2_7B, decode_graph
from repro.obs import write_chrome_trace
from repro.perf.kernel_cost import ExecutionTarget, Orchestration, cost_plan
from repro.perf.trace import plan_cost_trace, write_trace
from repro.sim.congestion import CongestionAnalyzer, PlacedFlow
from repro.systems import sn40l_platform


def main() -> None:
    graph = decode_graph(LLAMA2_7B, batch=1, context=2048, tp=8)
    plan = fusion.group_by_prefix(graph)

    print("1) Fused kernel plan (first kernels):")
    print(plan_summary(plan, max_kernels=2))
    print()

    print("2) Static bandwidth check of one decoder-layer kernel:")
    layer = next(k for k in plan.kernels if k.ops[0].name.startswith("l0."))
    duration = layer.weight_bytes / (8 * 2e12 * 0.85)
    report = analyze_kernel_bandwidth(layer, duration, sockets=8)
    print(f"   {report.summary()}")
    print(f"   slowdown at target rate: {report.slowdown:.2f}x\n")

    print("3) Chrome trace of the software-orchestrated schedule:")
    target = ExecutionTarget.from_socket(SocketConfig(), sockets=8)
    cost = cost_plan(plan, target, Orchestration.SOFTWARE)
    events = plan_cost_trace(cost)
    write_trace(events, "decode_schedule.json")
    print(f"   wrote {len(events)} events to decode_schedule.json\n")

    print("4) CoE serving metrics:")
    library = build_samba_coe_library(60)
    server = ExpertServer(sn40l_platform(), library)
    result = server.serve_experts(library.experts[:10], output_tokens=20)
    print(f"   {metrics_of(result, 20).summary()}\n")

    print("5) Serve-bench span timeline (sim time, overlap policy):")
    engine = ServingEngine(sn40l_platform(), library, policy="overlap")
    bench = engine.run(zipf_request_stream(library, 64, alpha=1.1, seed=1234))
    timeline = bench.timeline
    write_chrome_trace(timeline, "serve_timeline.json",
                       lanes=("compute", "switch", "prefetch"))
    print(f"   wrote {len(timeline)} spans to serve_timeline.json")
    print(f"   compute busy: {1e3 * timeline.busy_s('compute'):.2f} ms of "
          f"{1e3 * timeline.duration_s:.2f} ms makespan")
    print(f"   switch time hidden behind compute: "
          f"{100 * timeline.hidden_fraction('switch', 'compute'):.1f}%\n")

    print("6) Congestion triage (four flows through one mesh column):")
    analyzer = CongestionAnalyzer(Mesh(8, 8), RDNConfig())
    link_bw = RDNConfig().link_bandwidth
    for i in range(4):
        analyzer.place(
            PlacedFlow(f"stream{i}", (0, 0), ((5, 0),), rate=link_bw * 0.4)
        )
    hotspots = diagnose(analyzer.to_counters())
    for hotspot in hotspots[:3]:
        print(f"   {hotspot.unit}: {100 * hotspot.stall_fraction:.0f}% stalled "
              f"-> {hotspot.remedy.value}")


if __name__ == "__main__":
    main()
