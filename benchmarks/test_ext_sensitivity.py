"""Extension: sensitivity of the reproduced headlines to calibration.

A calibrated reproduction owes the reader this table: which conclusions
are structural (hold across the plausible constant range) and which are
calibration-dependent.
"""

import pytest

from benchmarks.conftest import print_table
from repro.systems.sensitivity import (
    decode_win_sensitivity,
    fusion_direction_sensitivity,
    oom_point_sensitivity,
    switch_ratio_sensitivity,
)


def run_sensitivity():
    return {
        "switch": switch_ratio_sensitivity(),
        "decode": decode_win_sensitivity(),
        "fusion": fusion_direction_sensitivity(),
        "oom": oom_point_sensitivity(),
    }


@pytest.fixture(scope="module")
def results():
    return run_sensitivity()


def test_sensitivity_report(benchmark, results):
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    rows = []
    for key in ("switch", "decode", "fusion"):
        r = results[key]
        lo, hi = r.metric_range
        rows.append((r.conclusion, r.constant,
                     f"{lo:.1f}x - {hi:.1f}x",
                     "holds everywhere" if r.always_holds else "FLIPS"))
    oom = results["oom"]
    rows.append(("DGX OOM point (experts)", "host DRAM +-20%",
                 f"{min(oom.values())} - {max(oom.values())}",
                 "holds everywhere"))
    print_table(
        "Extension: conclusion robustness across calibration sweeps",
        ["Conclusion", "Swept constant", "Metric range", "Verdict"],
        rows,
    )


def test_every_headline_is_robust(results):
    for key in ("switch", "decode", "fusion"):
        assert results[key].always_holds, key
    assert all(120 <= v <= 185 for v in results["oom"].values())
