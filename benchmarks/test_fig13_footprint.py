"""Figure 13: system footprint to sustain TP8 latency vs expert count.

Sustaining TP8 latency on a DGX means every expert must live in GPU HBM
(no host-DRAM switches), so the DGX footprint grows with expert count. On
the SN40L, the DDR tier holds the experts and the DDR->HBM switch fits in
the latency budget, so a single node serves the whole sweep.

Paper headline: one SN40L node holds and serves up to 850 experts; the
same CoE needs 19 DGX nodes — a 19x machine-footprint reduction.
"""

import pytest

from benchmarks.conftest import print_table
from repro.models.catalog import LLAMA2_7B
from repro.systems.footprint import (
    dgx_nodes_required,
    max_experts_single_node,
    sn40l_nodes_required,
)
from repro.systems.platforms import (
    dgx_a100_platform,
    dgx_h100_platform,
    sn40l_platform,
)
from repro.units import GiB

EXPERT = LLAMA2_7B.weight_bytes
RESERVED = LLAMA2_7B.weight_bytes + 8 * GiB  # router + KV-cache headroom
EXPERT_COUNTS = [50, 100, 200, 400, 600, 850]


def run_fig13():
    sn40l = sn40l_platform()
    dgxs = [dgx_a100_platform(), dgx_h100_platform()]
    rows = []
    for count in EXPERT_COUNTS:
        rows.append(
            {
                "experts": count,
                "SN40L-Node": sn40l_nodes_required(sn40l, count, EXPERT, RESERVED),
                "DGX-A100": dgx_nodes_required(dgxs[0], count, EXPERT, RESERVED),
                "DGX-H100": dgx_nodes_required(dgxs[1], count, EXPERT, RESERVED),
            }
        )
    return rows


@pytest.fixture(scope="module")
def fig13():
    return run_fig13()


def test_fig13_report(benchmark, fig13):
    benchmark.pedantic(lambda: fig13, rounds=1, iterations=1)
    print_table(
        "Figure 13: nodes required to sustain TP8 latency",
        ["Experts", "SN40L-Node", "DGX-A100", "DGX-H100"],
        [(r["experts"], r["SN40L-Node"], r["DGX-A100"], r["DGX-H100"]) for r in fig13],
    )
    single = max_experts_single_node(sn40l_platform(), EXPERT, RESERVED)
    print(f"Max experts on one SN40L node: {single} (paper: up to 850)")


def test_one_sn40l_node_covers_850_experts(fig13):
    assert all(r["SN40L-Node"] == 1 for r in fig13)


def test_19x_footprint_reduction_at_850(fig13):
    final = fig13[-1]
    assert final["experts"] == 850
    assert 17 <= final["DGX-A100"] <= 20  # paper: 19 DGX nodes
    assert final["DGX-A100"] / final["SN40L-Node"] >= 17


def test_dgx_footprint_grows_linearly(fig13):
    nodes = [r["DGX-A100"] for r in fig13]
    assert nodes == sorted(nodes)
    assert nodes[-1] > 4 * nodes[0]
