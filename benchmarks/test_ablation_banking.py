"""Ablation: programmable bank bits vs fixed banking (paper Section VII).

"PMUs are often programmed as double buffers ... bank conflicts could be
avoided if these buffers were statically mapped to different banks.
Programmable bank bits helped act upon this insight."

The ablation writes a double-buffered strided tensor through a PMU with
default (word-interleaved) banking and with software-programmed bank bits,
and reports conflict cycles. Also reproduces the diagonal-striping
transpose result vs a naive row-major layout.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.arch.config import PMUConfig
from repro.arch.pmu import PMU, DiagonalTileBuffer, row_major_conflict_cycles


def run_banking_ablation():
    cfg = PMUConfig(capacity_bytes=256 * 1024, num_banks=32)
    stride = cfg.num_banks  # double-buffer layout: conflict-prone stride
    addresses = [i * stride for i in range(cfg.num_banks)]
    values = [float(i) for i in range(cfg.num_banks)]

    fixed = PMU(cfg)
    fixed_cycles = fixed.write(addresses, values)

    programmed = PMU(cfg)
    programmed.set_bank_bits(5)  # bank = addr >> log2(stride)
    programmed_cycles = programmed.write(addresses, values)

    row_naive, col_naive = row_major_conflict_cycles(32, 32)
    diag = DiagonalTileBuffer(32, cfg)
    diag.write_tile(np.zeros((32, 32), dtype=np.float32))
    _, diag_col_cycles = diag.read_col(0)

    return {
        "fixed_cycles": fixed_cycles,
        "programmed_cycles": programmed_cycles,
        "naive_col_cycles": col_naive,
        "diag_col_cycles": diag_col_cycles,
    }


@pytest.fixture(scope="module")
def ablation():
    return run_banking_ablation()


def test_banking_report(benchmark, ablation):
    benchmark.pedantic(lambda: ablation, rounds=1, iterations=1)
    print_table(
        "Ablation: PMU banking (cycles per 32-wide vector access)",
        ["Access", "Fixed banking", "Programmable/striped"],
        [
            ("strided double-buffer write", ablation["fixed_cycles"],
             ablation["programmed_cycles"]),
            ("transposed (column) read", ablation["naive_col_cycles"],
             ablation["diag_col_cycles"]),
        ],
    )


def test_programmable_bank_bits_eliminate_conflicts(ablation):
    assert ablation["fixed_cycles"] == 32   # fully serialised
    assert ablation["programmed_cycles"] == 1  # conflict-free


def test_diagonal_striping_eliminates_transpose_conflicts(ablation):
    assert ablation["naive_col_cycles"] == 32
    assert ablation["diag_col_cycles"] == 1
