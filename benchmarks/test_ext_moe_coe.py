"""Extension: MoE models as CoE experts.

The paper (Section II): "a CoE can leverage expert models that are
implemented internally as MoEs." An MoE expert stores all of its internal
experts' weights (driving DDR hosting and switch cost) but reads only the
routed top-k per token (driving HBM decode traffic) — the three-tier
system absorbs the stored/active gap naturally.
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import fmt_ms, print_table
from repro.models.catalog import LLAMA2_7B, MISTRAL_7B
from repro.models.moe import mixtral_8x7b
from repro.systems.platforms import sn40l_platform
from repro.units import GiB


def _active_proxy(moe):
    """A dense config with the MoE's *active* parameter traffic.

    Per token, ``top_k`` expert FFNs execute, so the active model is the
    dense base with its FFN width scaled by ``top_k`` — used to time the
    memory-bound decode step.
    """
    return replace(
        moe.dense,
        name=f"{moe.name}-active",
        intermediate=moe.dense.intermediate * moe.top_k,
    )


def run_moe_coe():
    platform = sn40l_platform()
    moe = mixtral_8x7b()
    dense = MISTRAL_7B
    rows = {}
    for name, stored_bytes, active_cfg in (
        ("mistral-7b (dense)", dense.weight_bytes, dense),
        ("mixtral-8x7b (MoE)", moe.weight_bytes, _active_proxy(moe)),
    ):
        reserved = stored_bytes + 8 * GiB
        rows[name] = {
            "stored_gib": stored_bytes / GiB,
            "switch_s": platform.switch_time(stored_bytes),
            "token_s": platform.decode_token_time(active_cfg, 1, 1024),
            "hosted": platform.max_hosted_experts(stored_bytes, reserved),
        }
    return rows


@pytest.fixture(scope="module")
def rows():
    return run_moe_coe()


def test_moe_coe_report(benchmark, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    print_table(
        "Extension: dense vs MoE experts in the CoE (SN40L node)",
        ["Expert", "Stored", "Switch", "Decode/token", "Max hosted"],
        [(name, f"{d['stored_gib']:.1f} GiB", fmt_ms(d["switch_s"]),
          fmt_ms(d["token_s"]), d["hosted"]) for name, d in rows.items()],
    )


def test_moe_decode_cheaper_than_its_size(rows):
    """The MoE stores 3.6x the dense expert but decodes in ~2x the time
    (active params, not stored params, drive the memory-bound step)."""
    dense = rows["mistral-7b (dense)"]
    moe = rows["mixtral-8x7b (MoE)"]
    stored_ratio = moe["stored_gib"] / dense["stored_gib"]
    decode_ratio = moe["token_s"] / dense["token_s"]
    assert stored_ratio > 3.0
    assert decode_ratio < stored_ratio * 0.7


def test_switching_tracks_stored_bytes(rows):
    dense = rows["mistral-7b (dense)"]
    moe = rows["mixtral-8x7b (MoE)"]
    assert moe["switch_s"] / dense["switch_s"] == pytest.approx(
        moe["stored_gib"] / dense["stored_gib"], rel=0.05
    )


def test_node_still_hosts_a_large_moe_coe(rows):
    assert rows["mixtral-8x7b (MoE)"]["hosted"] >= 140
