"""Extension: INT8 experts on the three-tier memory system.

Quantizing expert weights doubles every capacity-derived quantity in the
paper's CoE story: experts per HBM, experts per node, switch speed, and
memory-bound decode speed.
"""

import pytest

from benchmarks.conftest import fmt_ms, print_table
from repro.models.catalog import LLAMA2_7B
from repro.models.quantize import quantize
from repro.systems.platforms import sn40l_platform
from repro.units import GiB


def run_quantization():
    platform = sn40l_platform()
    rows = {}
    for cfg in (LLAMA2_7B, quantize(LLAMA2_7B)):
        reserved = cfg.weight_bytes + 8 * GiB
        rows[cfg.name] = {
            "hbm_slots": platform.hbm_expert_slots(cfg.weight_bytes, reserved),
            "hosted": platform.max_hosted_experts(cfg.weight_bytes, reserved),
            "switch_s": platform.switch_time(cfg.weight_bytes),
            "token_s": platform.decode_token_time(cfg, 1, 1024),
        }
    return rows


@pytest.fixture(scope="module")
def rows():
    return run_quantization()


def test_quantization_report(benchmark, rows):
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    print_table(
        "Extension: BF16 vs INT8 experts on the SN40L node",
        ["Model", "HBM slots", "Max hosted", "Switch", "Decode/token"],
        [(name, d["hbm_slots"], d["hosted"], fmt_ms(d["switch_s"]),
          fmt_ms(d["token_s"])) for name, d in rows.items()],
    )


def test_capacity_doubles(rows):
    bf16, int8 = rows["llama2-7b"], rows["llama2-7b-int8"]
    assert int8["hbm_slots"] >= 2 * bf16["hbm_slots"]
    assert int8["hosted"] >= 2 * bf16["hosted"]


def test_switch_and_decode_speed_up(rows):
    bf16, int8 = rows["llama2-7b"], rows["llama2-7b-int8"]
    assert int8["switch_s"] == pytest.approx(bf16["switch_s"] / 2, rel=0.05)
    assert int8["token_s"] < 0.7 * bf16["token_s"]


def test_int8_node_hosts_2000_experts(rows):
    assert rows["llama2-7b-int8"]["hosted"] >= 2000
