"""Ablation: software-launch overhead sweep (why HW orchestration exists).

Sweeps the per-kernel software launch cost and reports decode-step latency
for the fused llama2-7b decoder, showing where host-driven scheduling
stops being tolerable and the AGCU's hardware orchestration becomes
necessary (paper Section IV-D).
"""

import dataclasses

import pytest

from benchmarks.conftest import fmt_ms, print_table
from repro.arch.config import SocketConfig
from repro.dataflow import fusion
from repro.models.catalog import LLAMA2_7B
from repro.models.transformer import decode_graph
from repro.perf.calibration import DEFAULT_CALIBRATION
from repro.perf.kernel_cost import ExecutionTarget, Orchestration, cost_plan

SW_OVERHEADS_US = [2, 6, 12, 25, 50, 100]


def run_sweep():
    graph = decode_graph(LLAMA2_7B, batch=1, context=4096, tp=8)
    plan = fusion.group_by_prefix(graph)
    rows = []
    for sw_us in SW_OVERHEADS_US:
        cal = dataclasses.replace(DEFAULT_CALIBRATION, sw_launch_fixed_s=sw_us * 1e-6)
        target = ExecutionTarget.from_socket(SocketConfig(), sockets=8,
                                             calibration=cal)
        so = cost_plan(plan, target, Orchestration.SOFTWARE)
        ho = cost_plan(plan, target, Orchestration.HARDWARE)
        rows.append({
            "sw_us": sw_us,
            "so_s": so.total_s,
            "ho_s": ho.total_s,
            "ho_x": so.total_s / ho.total_s,
        })
    return rows


@pytest.fixture(scope="module")
def sweep():
    return run_sweep()


def test_orchestration_sweep_report(benchmark, sweep):
    benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: decode step vs software launch overhead (llama2-7b TP8)",
        ["SW launch (us/kernel)", "Fused+SO", "Fused+HO", "HO speedup"],
        [(r["sw_us"], fmt_ms(r["so_s"]), fmt_ms(r["ho_s"]), f"{r['ho_x']:.2f}x")
         for r in sweep],
    )


def test_ho_speedup_grows_with_sw_overhead(sweep):
    gains = [r["ho_x"] for r in sweep]
    assert gains == sorted(gains)
    assert gains[-1] > 3.0  # at 100 us/kernel, decode is launch-bound

def test_ho_latency_independent_of_sw_cost(sweep):
    ho_times = {round(r["ho_s"], 9) for r in sweep}
    assert len(ho_times) == 1
