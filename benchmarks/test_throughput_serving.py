"""Throughput serving engine benchmark + cost-model microbenchmark.

Two perf trajectories for later PRs to regress against, emitted to
``BENCH_throughput.json`` at the repo root:

1. **Serving throughput** — requests/s and tokens/s per scheduling policy
   (fifo / affinity / overlap) per platform on a skewed (Zipf) request
   stream, with the switch-hidden fraction of the overlap policy.
2. **Cost-model microbenchmark** — wall-clock of a Figure-12-style sweep
   (150 experts x 512 decode tokens) through the per-token reference loop
   vs the closed-form + memoized ``decode_span_time`` path.
"""

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import fmt_ms, print_table
from repro.bench.sweep import SweepPoint, run_sweep
from repro.coe.engine import POLICIES, compare_policies, zipf_request_stream
from repro.coe.expert import build_samba_coe_library
from repro.models.catalog import LLAMA2_7B
from repro.systems.platforms import (
    Platform,
    dgx_a100_platform,
    dgx_h100_platform,
    sn40l_platform,
)

NUM_EXPERTS = 100  # fits all three platforms (DGX OOMs at 150)
NUM_REQUESTS = 256
OUTPUT_TOKENS = 20
ZIPF_ALPHA = 1.1

SWEEP_EXPERTS = 150
SWEEP_TOKENS = 512
SWEEP_PROMPT = 256

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


_PLATFORM_FACTORIES = {
    "sn40l": sn40l_platform,
    "dgx_h100": dgx_h100_platform,
    "dgx_a100": dgx_a100_platform,
}


def _throughput_point(point: SweepPoint):
    """One platform's full policy ladder (fifo/affinity/overlap);
    module-level so the sweep runner's fork pool can pickle it."""
    platform = _PLATFORM_FACTORIES[point["platform"]]()
    library = build_samba_coe_library(NUM_EXPERTS)
    requests = zipf_request_stream(
        library, NUM_REQUESTS, alpha=ZIPF_ALPHA, seed=1234,
        output_tokens=OUTPUT_TOKENS,
    )
    return platform.name, compare_policies(platform, library, requests)


@pytest.fixture(scope="module")
def throughput_reports():
    swept = run_sweep(
        _throughput_point,
        {"platform": tuple(_PLATFORM_FACTORIES)},
        base_seed=1234,
    )
    return dict(swept)


@pytest.fixture(scope="module")
def microbench():
    """150-expert x 512-token sweep: reference loop vs closed form."""
    platform = sn40l_platform()
    loop_fn = Platform.decode_token_time.__wrapped__  # uncached reference

    start = time.perf_counter()
    loop_total = 0.0
    for _ in range(SWEEP_EXPERTS):
        for step in range(SWEEP_TOKENS):
            loop_total += loop_fn(platform, LLAMA2_7B, 1, SWEEP_PROMPT + step)
    loop_s = time.perf_counter() - start

    Platform.decode_span_time.cache_clear()  # cold closed-form path
    start = time.perf_counter()
    closed_total = 0.0
    for _ in range(SWEEP_EXPERTS):
        closed_total += platform.decode_span_time(
            LLAMA2_7B, SWEEP_TOKENS, 1, SWEEP_PROMPT
        )
    closed_s = time.perf_counter() - start

    return {
        "sweep_experts": SWEEP_EXPERTS,
        "sweep_tokens": SWEEP_TOKENS,
        "loop_wall_s": loop_s,
        "closed_form_wall_s": closed_s,
        "speedup": loop_s / closed_s if closed_s > 0 else float("inf"),
        "loop_total_s": loop_total,
        "closed_form_total_s": closed_total,
    }


def test_throughput_report(benchmark, throughput_reports):
    benchmark.pedantic(lambda: throughput_reports, rounds=1, iterations=1)
    rows = []
    for platform, reports in throughput_reports.items():
        for policy, report in reports.items():
            rows.append([
                platform, policy,
                f"{report.requests_per_second:.2f}",
                f"{report.tokens_per_second:.1f}",
                fmt_ms(report.p50_s), fmt_ms(report.p99_s),
                f"{report.mean_batch:.2f}",
                f"{100 * report.switch_hidden_fraction:.1f}%",
            ])
    print_table(
        f"Throughput serving: {NUM_REQUESTS} Zipf requests, "
        f"{NUM_EXPERTS} experts",
        ["Platform", "Policy", "req/s", "tok/s", "p50", "p99",
         "batch", "hidden"],
        rows,
    )


def test_overlap_strictly_beats_fifo(throughput_reports):
    """Acceptance: grouped batching + copy/compute overlap must win on a
    skewed stream, with a nonzero hidden-switch fraction, everywhere."""
    for platform, reports in throughput_reports.items():
        assert (reports["overlap"].requests_per_second
                > reports["fifo"].requests_per_second), platform
        assert reports["overlap"].switch_hidden_fraction > 0, platform


def test_policy_ladder_is_monotonic(throughput_reports):
    for platform, reports in throughput_reports.items():
        assert (reports["overlap"].requests_per_second
                >= reports["affinity"].requests_per_second
                >= reports["fifo"].requests_per_second), platform


def test_closed_form_agrees_and_is_10x_faster(microbench):
    rel = abs(microbench["loop_total_s"] - microbench["closed_form_total_s"])
    rel /= microbench["loop_total_s"]
    assert rel <= 1e-9
    assert microbench["speedup"] >= 10.0


def test_emit_bench_json(throughput_reports, microbench):
    payload = {
        "workload": {
            "experts": NUM_EXPERTS,
            "requests": NUM_REQUESTS,
            "output_tokens": OUTPUT_TOKENS,
            "zipf_alpha": ZIPF_ALPHA,
            "policies": list(POLICIES),
        },
        "serving": {
            platform: {policy: report.to_dict()
                       for policy, report in reports.items()}
            for platform, reports in throughput_reports.items()
        },
        "cost_model_microbenchmark": microbench,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    assert OUTPUT_PATH.exists()
