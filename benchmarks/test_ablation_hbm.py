"""Ablation: the HBM tier (SN40L) vs a DDR-only RDU (SN10-like).

Paper Section IV-E: "SN40L is the first RDU to include HBM ... the
addition of the HBM memory tier is critical to the feasibility of CoE."
This ablation quantifies that: with only DDR behind the SRAM, decode
bandwidth drops by an order of magnitude, and the expert's temporal
locality (weights re-read every generated token) cannot be exploited.
"""

import pytest

from benchmarks.conftest import fmt_ms, fmt_x, print_table
from repro.models.catalog import LLAMA2_7B
from repro.perf.calibration import DEFAULT_CALIBRATION

TOKENS = 20
SOCKETS = 8


def run_hbm_ablation():
    cal = DEFAULT_CALIBRATION
    weights = LLAMA2_7B.weight_bytes
    hbm_bw = SOCKETS * 2e12 * cal.fused_hbm_efficiency
    ddr_bw = SOCKETS * 200e9  # DDR-only: every weight read at DDR speed
    per_token_hbm = weights / hbm_bw
    per_token_ddr = weights / ddr_bw
    # With HBM, the expert is copied DDR->HBM once, then decoded from HBM;
    # without, every token streams weights from DDR (no fast tier to cache
    # the expert's temporal locality in).
    switch = weights / cal.node_ddr_to_hbm_bandwidth
    with_hbm = switch + TOKENS * per_token_hbm
    without_hbm = TOKENS * per_token_ddr
    return {
        "per_token_hbm": per_token_hbm,
        "per_token_ddr": per_token_ddr,
        "with_hbm": with_hbm,
        "without_hbm": without_hbm,
    }


@pytest.fixture(scope="module")
def ablation():
    return run_hbm_ablation()


def test_hbm_ablation_report(benchmark, ablation):
    benchmark.pedantic(lambda: ablation, rounds=1, iterations=1)
    print_table(
        f"Ablation: HBM tier vs DDR-only RDU ({TOKENS}-token expert run)",
        ["Config", "Per-token", "Total (switch + decode)"],
        [
            ("SN40L (DDR + HBM + SRAM)", fmt_ms(ablation["per_token_hbm"]),
             fmt_ms(ablation["with_hbm"])),
            ("SN10-like (DDR + SRAM)", fmt_ms(ablation["per_token_ddr"]),
             fmt_ms(ablation["without_hbm"])),
            ("HBM advantage", fmt_x(ablation["per_token_ddr"] / ablation["per_token_hbm"]),
             fmt_x(ablation["without_hbm"] / ablation["with_hbm"])),
        ],
    )


def test_hbm_pays_for_its_switch_cost(ablation):
    """Even including the DDR->HBM copy, the HBM path wins at 20 tokens."""
    assert ablation["with_hbm"] < ablation["without_hbm"]


def test_hbm_decode_order_of_magnitude_faster(ablation):
    assert ablation["per_token_ddr"] / ablation["per_token_hbm"] > 8


def test_break_even_is_a_few_tokens(ablation):
    """The copy amortises after a handful of tokens — the temporal
    locality argument of paper Section III-B."""
    switch = LLAMA2_7B.weight_bytes / DEFAULT_CALIBRATION.node_ddr_to_hbm_bandwidth
    per_saved = ablation["per_token_ddr"] - ablation["per_token_hbm"]
    break_even = switch / per_saved
    assert break_even < 3
