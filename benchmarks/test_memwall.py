"""Constrained-memory CoE serving ladder: capacity vs switch cost.

The paper's three-tier SN40L node (Section III) sizes DDR for the whole
CoE working set; this benchmark asks what happens when it cannot — the
CoServe scenario (arXiv:2503.02354) of serving a composition from less
memory than it wants. Two ladders, emitted to ``BENCH_memwall.json`` at
the repo root through :mod:`repro.bench.sweep`:

1. **HBM ladder** — the HBM expert region swept from 2x the library
   working set down to 0.1x, for every online cache policy plus the
   offline Belady bound, under both admission schedulers (``fifo`` and
   ``expert_reorder``). This charts the memory wall: how fast goodput
   decays with capacity, and how much of the decay smarter eviction and
   admission-time reordering buy back.
2. **DDR ladder** — HBM pinned at 0.25x while DDR shrinks below the
   working set, pushing the overflow onto the NVMe backing tier; the
   interesting observable is the multi-hop promotion traffic
   (``tier_promotions``, ``nvme_bytes_read``) that the
   :class:`repro.memory.MemoryHierarchy` prices.
3. **Pipeline ladder** — HBM pinned at 0.5x while DDR walks the same
   rungs, comparing the ``gdsf`` baseline against the ``lookahead``
   cache policy and CoServe-style pipelined NVMe->DDR promotions
   (``pipeline_promotions``), alone and combined, with the Belady
   replay as the hit-rate ceiling: how much of the remaining gap the
   backlog-aware pair closes.

Methodology: the node runs the ``fifo`` scheduling policy, so for a
fixed admission scheduler the demand access sequence is the coalesced
group order — identical for every cache policy and every capacity,
which makes the Belady replay (trace recorded under LRU) a valid bound
per (capacity, scheduler) point and makes LRU's hit rate monotone in
capacity. Everything is deterministic: the payload is asserted
byte-identical across two same-seed runs.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import json
import os
from pathlib import Path

import pytest

from benchmarks.conftest import fmt_ms, print_table
from repro.bench.sweep import SweepPoint, run_sweep
from repro.coe.cache import BeladyPolicy
from repro.coe.engine import ServingEngine, zipf_request_stream
from repro.coe.expert import build_samba_coe_library
from repro.systems.platforms import sn40l_platform

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

NUM_EXPERTS = 24 if SMOKE else 40
NUM_REQUESTS = 160 if SMOKE else 360
OUTPUT_TOKENS = 20
ZIPF_ALPHA = 1.1
SEED = 1234
MAX_BATCH = 4

#: HBM expert-region budget as a fraction of the library working set,
#: 2x (everything fits twice over) down to 0.1x (brutal).
HBM_FRACS = (2.0, 1.0, 0.5, 0.25, 0.1)
#: DDR ladder: HBM pinned here while DDR shrinks below the working set.
DDR_HBM_FRAC = 0.25
DDR_FRACS = (1.0, 0.6, 0.35)
CACHE_POLICIES_SWEPT = ("lru", "lfu", "gdsf")
SCHEDULERS_SWEPT = ("fifo", "expert_reorder")
#: Pipeline ladder: HBM pinned here while DDR walks DDR_FRACS, under
#: the reordered backlog — the CoServe configuration. Each rung compares
#: the PR 9 best online point (gdsf) against the lookahead policy and
#: the pipelined NVMe->DDR promotion path, alone and combined, with the
#: Belady replay of the same demand trace as the hit-rate ceiling.
PIPELINE_HBM_FRAC = 0.5
PIPELINE_CONFIGS = ("gdsf", "gdsf+pipelined", "lookahead",
                    "lookahead+pipelined", "belady")

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_memwall.json"


def _library():
    return build_samba_coe_library(NUM_EXPERTS)


def _requests(library):
    return zipf_request_stream(
        library, NUM_REQUESTS, alpha=ZIPF_ALPHA, seed=SEED,
        output_tokens=OUTPUT_TOKENS,
    )


def _capacities(library, hbm_frac, ddr_frac=None):
    """Fraction-of-working-set capacities, floored at one expert."""
    working_set = sum(e.weight_bytes for e in library.experts)
    biggest = max(e.weight_bytes for e in library.experts)
    caps = {"hbm": max(int(hbm_frac * working_set), biggest)}
    if ddr_frac is not None:
        caps["ddr"] = max(int(ddr_frac * working_set), caps["hbm"])
    return caps


def _run_point(library, requests, caps, cache_policy, scheduler,
               pipelined=False):
    engine = ServingEngine(
        sn40l_platform(), library, policy="fifo", max_batch=MAX_BATCH,
        cache_policy=cache_policy, scheduler=scheduler,
        tier_capacities=caps, pipeline_promotions=pipelined,
    )
    report = engine.run(requests)
    stats = engine.server.runtime.stats
    return {
        "cache_policy": report.cache_policy,
        "scheduler": report.scheduler,
        "pipelined": pipelined,
        "demand_hit_rate": report.demand_hit_rate,
        "hits": stats.hits,
        "misses": stats.misses,
        "switch_time_s": stats.switch_time_s,
        "bytes_up": stats.bytes_up,
        "evictions": stats.evictions,
        "tier_promotions": stats.tier_promotions,
        "tier_demotions": stats.tier_demotions,
        "tier_overruns": stats.tier_overruns,
        "pipelined_promotions": stats.pipelined_promotions,
        "nvme_bytes_read": stats.nvme_bytes_read,
        "nvme_bytes_written": stats.nvme_bytes_written,
        "makespan_s": report.makespan_s,
        "tokens_per_second": report.tokens_per_second,
    }, engine.server.runtime


def _ladder_point(point: SweepPoint):
    """One (hbm_frac, scheduler) rung: every online policy plus Belady.

    Module-level so the sweep runner's fork pool can pickle it; the
    workload rebuilds deterministically from ``SEED`` in the worker.
    """
    library = _library()
    requests = _requests(library)
    caps = _capacities(library, point["hbm_frac"])
    results = {}
    lru_result, lru_runtime = _run_point(
        library, requests, caps, "lru", point["scheduler"]
    )
    results["lru"] = lru_result
    for name in CACHE_POLICIES_SWEPT:
        if name == "lru":
            continue
        results[name], _ = _run_point(
            library, requests, caps, name, point["scheduler"]
        )
    oracle = BeladyPolicy(lru_runtime.demand_trace)
    results["belady"], _ = _run_point(
        library, requests, caps, oracle, point["scheduler"]
    )
    key = f"hbm={point['hbm_frac']:g}x/{point['scheduler']}"
    return key, {
        "hbm_frac": point["hbm_frac"],
        "scheduler": point["scheduler"],
        "policies": results,
    }


def _ddr_point(point: SweepPoint):
    """One DDR rung: HBM pinned, DDR shrinking, NVMe catching overflow."""
    library = _library()
    requests = _requests(library)
    caps = _capacities(library, DDR_HBM_FRAC, ddr_frac=point["ddr_frac"])
    results = {}
    for scheduler in SCHEDULERS_SWEPT:
        results[scheduler], _ = _run_point(
            library, requests, caps, "lru", scheduler
        )
    key = f"ddr={point['ddr_frac']:g}x"
    return key, {
        "hbm_frac": DDR_HBM_FRAC,
        "ddr_frac": point["ddr_frac"],
        "schedulers": results,
    }


def _pipeline_point(point: SweepPoint):
    """One pipeline rung: lookahead x pipelining against the gdsf
    baseline and the Belady ceiling, under the reordered backlog."""
    library = _library()
    requests = _requests(library)
    caps = _capacities(library, PIPELINE_HBM_FRAC,
                       ddr_frac=point["ddr_frac"])
    results = {}
    gdsf_result, gdsf_runtime = _run_point(
        library, requests, caps, "gdsf", "expert_reorder"
    )
    results["gdsf"] = gdsf_result
    results["gdsf+pipelined"], _ = _run_point(
        library, requests, caps, "gdsf", "expert_reorder", pipelined=True
    )
    results["lookahead"], _ = _run_point(
        library, requests, caps, "lookahead", "expert_reorder"
    )
    results["lookahead+pipelined"], _ = _run_point(
        library, requests, caps, "lookahead", "expert_reorder",
        pipelined=True
    )
    # The demand access sequence is scheduler-determined (fifo node
    # policy), identical for every cache policy and pipelining flag —
    # so one recorded trace bounds every config on this rung.
    oracle = BeladyPolicy(gdsf_runtime.demand_trace)
    results["belady"], _ = _run_point(
        library, requests, caps, oracle, "expert_reorder"
    )
    key = f"ddr={point['ddr_frac']:g}x"
    return key, {
        "hbm_frac": PIPELINE_HBM_FRAC,
        "ddr_frac": point["ddr_frac"],
        "configs": results,
    }


@pytest.fixture(scope="module")
def memwall_sweeps():
    """All three ladders, run twice to pin byte-level determinism."""
    hbm_axes = {"hbm_frac": HBM_FRACS, "scheduler": SCHEDULERS_SWEPT}
    ddr_axes = {"ddr_frac": DDR_FRACS}

    def run_all():
        return {
            "hbm_ladder": dict(run_sweep(_ladder_point, hbm_axes,
                                         base_seed=SEED)),
            "ddr_ladder": dict(run_sweep(_ddr_point, ddr_axes,
                                         base_seed=SEED)),
            "pipeline_ladder": dict(run_sweep(_pipeline_point, ddr_axes,
                                              base_seed=SEED)),
        }

    first, second = run_all(), run_all()
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    ), "memwall sweep is not deterministic across same-seed runs"
    return first


def test_memwall_ladder_table(benchmark, memwall_sweeps):
    benchmark.pedantic(lambda: memwall_sweeps, rounds=1, iterations=1)
    rows = []
    for rung in memwall_sweeps["hbm_ladder"].values():
        for name, r in rung["policies"].items():
            rows.append([
                f"{rung['hbm_frac']:g}x",
                rung["scheduler"],
                name,
                f"{r['demand_hit_rate']:.3f}",
                f"{r['switch_time_s']:.3f} s",
                f"{r['tokens_per_second']:.0f}",
                fmt_ms(r["makespan_s"]),
            ])
    print_table(
        f"Constrained-HBM ladder ({NUM_EXPERTS} experts, "
        f"{NUM_REQUESTS} Zipf-{ZIPF_ALPHA} requests)",
        ["HBM", "scheduler", "policy", "hit rate", "demand switch",
         "tok/s", "makespan"],
        rows,
    )
    ddr_rows = []
    for rung in memwall_sweeps["ddr_ladder"].values():
        for sched, r in rung["schedulers"].items():
            ddr_rows.append([
                f"{rung['ddr_frac']:g}x",
                sched,
                f"{r['demand_hit_rate']:.3f}",
                r["tier_promotions"],
                f"{r['nvme_bytes_read'] / 1e9:.1f} GB",
                f"{r['switch_time_s']:.3f} s",
            ])
    print_table(
        f"Constrained-DDR ladder (HBM pinned at {DDR_HBM_FRAC:g}x, LRU)",
        ["DDR", "scheduler", "hit rate", "NVMe promos", "NVMe read",
         "demand switch"],
        ddr_rows,
    )
    pipe_rows = []
    for rung in memwall_sweeps["pipeline_ladder"].values():
        for name in PIPELINE_CONFIGS:
            r = rung["configs"][name]
            pipe_rows.append([
                f"{rung['ddr_frac']:g}x",
                name,
                f"{r['demand_hit_rate']:.3f}",
                r["pipelined_promotions"],
                f"{r['switch_time_s']:.3f} s",
                fmt_ms(r["makespan_s"]),
            ])
    print_table(
        f"Promotion-pipeline ladder (HBM {PIPELINE_HBM_FRAC:g}x, "
        f"expert_reorder admission)",
        ["DDR", "config", "hit rate", "pipelined", "demand switch",
         "makespan"],
        pipe_rows,
    )


def test_ladder_shape_meets_acceptance(memwall_sweeps):
    """>=5 rungs from 2x to 0.1x, >=3 cache policies x >=2 schedulers."""
    ladder = memwall_sweeps["hbm_ladder"]
    fracs = sorted({rung["hbm_frac"] for rung in ladder.values()})
    schedulers = {rung["scheduler"] for rung in ladder.values()}
    assert len(fracs) >= 5
    assert fracs[0] == 0.1 and fracs[-1] == 2.0
    assert schedulers == set(SCHEDULERS_SWEPT)
    for rung in ladder.values():
        online = set(rung["policies"]) - {"belady"}
        assert len(online) >= 3


def test_belady_bounds_every_online_policy(memwall_sweeps):
    """No online policy may beat the clairvoyant oracle on its rung."""
    for key, rung in memwall_sweeps["hbm_ladder"].items():
        bound = rung["policies"]["belady"]["demand_hit_rate"]
        for name in CACHE_POLICIES_SWEPT:
            assert rung["policies"][name]["demand_hit_rate"] <= bound + 1e-12, (
                key, name
            )


def test_lru_hit_rate_monotone_in_capacity(memwall_sweeps):
    """LRU is a stack algorithm and the demand trace is capacity-
    independent, so more HBM can never hurt its hit rate."""
    ladder = memwall_sweeps["hbm_ladder"]
    for scheduler in SCHEDULERS_SWEPT:
        rates = [
            rung["policies"]["lru"]["demand_hit_rate"]
            for rung in sorted(
                (r for r in ladder.values() if r["scheduler"] == scheduler),
                key=lambda r: r["hbm_frac"],
            )
        ]
        assert rates == sorted(rates), scheduler


def test_reordering_beats_fifo_at_half_capacity(memwall_sweeps):
    """Acceptance: at 0.5x HBM, expert reordering beats FIFO admission
    on total switch time or goodput for every cache policy."""
    ladder = memwall_sweeps["hbm_ladder"]
    fifo = ladder["hbm=0.5x/fifo"]["policies"]
    reorder = ladder["hbm=0.5x/expert_reorder"]["policies"]
    for name in CACHE_POLICIES_SWEPT:
        assert (
            reorder[name]["switch_time_s"] < fifo[name]["switch_time_s"]
            or reorder[name]["tokens_per_second"]
            > fifo[name]["tokens_per_second"]
        ), name


def test_ddr_ladder_exercises_nvme_promotions(memwall_sweeps):
    """Shrinking DDR below the working set must produce real multi-hop
    traffic; a full-working-set DDR must produce none."""
    ladder = memwall_sweeps["ddr_ladder"]
    full = ladder["ddr=1x"]["schedulers"]
    for sched in SCHEDULERS_SWEPT:
        assert full[sched]["tier_promotions"] == 0
        assert full[sched]["nvme_bytes_read"] == 0
    for key, rung in ladder.items():
        if rung["ddr_frac"] >= 1.0:
            continue
        for sched in SCHEDULERS_SWEPT:
            r = rung["schedulers"][sched]
            assert r["tier_promotions"] > 0, (key, sched)
            assert r["nvme_bytes_read"] > 0, (key, sched)
            assert r["tier_demotions"] > 0, (key, sched)


def test_reordering_cuts_nvme_traffic_under_constrained_ddr(memwall_sweeps):
    """Grouping by expert amortizes promotions: under the tightest DDR,
    expert_reorder reads no more NVMe bytes than FIFO admission."""
    tightest = memwall_sweeps["ddr_ladder"][f"ddr={min(DDR_FRACS):g}x"]
    fifo = tightest["schedulers"]["fifo"]
    reorder = tightest["schedulers"]["expert_reorder"]
    assert reorder["nvme_bytes_read"] <= fifo["nvme_bytes_read"]


def test_pipelined_lookahead_closes_gap_to_belady(memwall_sweeps):
    """Acceptance: wherever DDR is constrained enough to put NVMe in
    play, the lookahead+pipelined point strictly reduces demand switch
    stall against the PR 9 best online baseline (expert_reorder+gdsf)
    while staying at or under the Belady hit-rate ceiling."""
    for key, rung in memwall_sweeps["pipeline_ladder"].items():
        configs = rung["configs"]
        bound = configs["belady"]["demand_hit_rate"]
        for name in PIPELINE_CONFIGS:
            assert (configs[name]["demand_hit_rate"]
                    <= bound + 1e-12), (key, name)
        if rung["ddr_frac"] >= 1.0:
            continue
        base = configs["gdsf"]
        best = configs["lookahead+pipelined"]
        assert best["switch_time_s"] < base["switch_time_s"], key
        assert best["pipelined_promotions"] > 0, key
        # Pipelining alone never adds demand stall: the same misses pay
        # at most the DDR->HBM hop instead of the NVMe two-hop, and the
        # demotion write-back moved off the demand path entirely.
        assert (configs["gdsf+pipelined"]["switch_time_s"]
                <= base["switch_time_s"]), key


def test_pipelining_is_noop_with_full_ddr(memwall_sweeps):
    """With DDR sized for the whole working set nothing lives on NVMe,
    so the promotion pipeline must change no simulated number."""
    configs = memwall_sweeps["pipeline_ladder"]["ddr=1x"]["configs"]
    for name in ("gdsf", "lookahead"):
        expected = dict(configs[name], pipelined=True)
        assert configs[f"{name}+pipelined"] == expected, name
        assert configs[f"{name}+pipelined"]["pipelined_promotions"] == 0


def test_emit_bench_json(memwall_sweeps):
    payload = {
        "workload": {
            "experts": NUM_EXPERTS,
            "requests": NUM_REQUESTS,
            "zipf_alpha": ZIPF_ALPHA,
            "seed": SEED,
            "max_batch": MAX_BATCH,
            "node_policy": "fifo",
            "hbm_fracs": list(HBM_FRACS),
            "ddr_hbm_frac": DDR_HBM_FRAC,
            "ddr_fracs": list(DDR_FRACS),
            "cache_policies": list(CACHE_POLICIES_SWEPT) + ["belady"],
            "schedulers": list(SCHEDULERS_SWEPT),
            "pipeline_hbm_frac": PIPELINE_HBM_FRAC,
            "pipeline_configs": list(PIPELINE_CONFIGS),
            "smoke": SMOKE,
        },
        "sweeps": memwall_sweeps,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    assert OUTPUT_PATH.exists()
