"""Shared helpers for the paper-reproduction benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation (Section VI) and prints a paper-vs-measured comparison; run
with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

from typing import List, Sequence


def print_table(title: str, header: Sequence[str], rows: List[Sequence]) -> None:
    """Render one reproduction table to stdout."""
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def fmt_x(value: float) -> str:
    """Format a speedup ratio, e.g. '3.7x'."""
    return f"{value:.1f}x"


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f} ms"
