"""Table I: operational intensity vs fusion level (Monarch FFT example).

Paper values: No fusion 39.5, Gemm0-Mul-Transpose 102.6, fully spatially
fused 410.4 ops/byte. The first two are memory-bound on an A100
(ridge ~150 FLOPs/byte); only full fusion is compute-bound.

Figure 3's exact tensor shapes are not recoverable from the paper text; we
use a 1024-point Monarch stage, for which the fully-fused intensity lands
exactly on the paper's 410.4. The partial levels depend on the assumed
per-kernel on-chip capacity (see repro.dataflow.intensity); ordering and
the memory-/compute-bound split match the paper.
"""

import pytest

from benchmarks.conftest import print_table
from repro.dataflow import fusion
from repro.dataflow.intensity import (
    GPU_FUSED,
    GPU_UNFUSED,
    SN40L_STREAMING,
    operational_intensity,
)
from repro.models.fftconv import monarch_fft_graph
from repro.perf.roofline import Roofline

PAPER = {"No fusion": 39.5, "Gemm0 - Mul - Transpose": 102.6,
         "Fully spatially fused": 410.4}
A100 = Roofline("A100", peak_flops=312e12, mem_bandwidth=2.039e12)


def compute_intensity_levels():
    graph = monarch_fft_graph(m=1024)
    return {
        "No fusion": operational_intensity(fusion.unfused(graph), GPU_UNFUSED),
        "Gemm0 - Mul - Transpose": operational_intensity(
            fusion.manual_plan(graph, [["gemm0", "mul", "transpose"], ["gemm1"]]),
            GPU_FUSED,
        ),
        "Fully spatially fused": operational_intensity(
            fusion.streaming_fusion(graph), SN40L_STREAMING
        ),
    }


def test_table1_intensity(benchmark):
    levels = benchmark(compute_intensity_levels)
    rows = [
        (name, f"{PAPER[name]:.1f}", f"{value:.1f}",
         "memory" if A100.is_memory_bound(value) else "compute")
        for name, value in levels.items()
    ]
    print_table(
        "Table I: operation intensity (ops/byte) by fusion level",
        ["Fusion level", "Paper", "Measured", "A100-bound"],
        rows,
    )
    values = list(levels.values())
    assert values[0] < values[1] < values[2]
    assert values[2] == pytest.approx(410.4, rel=0.01)
    assert A100.is_memory_bound(values[0])
    assert A100.is_memory_bound(values[1])
    assert not A100.is_memory_bound(values[2])
