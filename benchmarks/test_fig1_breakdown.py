"""Figure 1: CoE latency breakdown — model switching vs model execution.

The paper's motivating figure: generating 20 output tokens from a
Llama2-7B expert when the expert must first be switched in. On the DGXs
(experts overflowing to host DRAM) switching dominates; on the SN40L the
DDR->HBM copy is a small fraction of total latency.
"""

import pytest

from benchmarks.conftest import fmt_ms, print_table
from repro.coe.expert import build_samba_coe_library
from repro.coe.serving import ExpertServer
from repro.systems.platforms import (
    dgx_a100_platform,
    dgx_h100_platform,
    sn40l_platform,
)

OUTPUT_TOKENS = 20


def breakdown_for(platform, library):
    server = ExpertServer(platform, library)
    # Cold expert: the request always pays the switch (the Figure 1 case).
    result = server.serve_experts([library.experts[0]],
                                  output_tokens=OUTPUT_TOKENS)
    request = result.requests[0]
    return {
        "platform": platform.name,
        "switch_s": request.switch_s,
        "execute_s": request.execute_s,
        "total_s": request.total_s,
    }


def run_breakdown():
    library = build_samba_coe_library(150)
    return [
        breakdown_for(p, library)
        for p in (sn40l_platform(), dgx_h100_platform(), dgx_a100_platform())
    ]


def test_fig1_latency_breakdown(benchmark):
    rows_data = benchmark(run_breakdown)
    rows = [
        (
            d["platform"],
            fmt_ms(d["switch_s"]),
            fmt_ms(d["execute_s"]),
            fmt_ms(d["total_s"]),
            f"{100 * d['switch_s'] / d['total_s']:.0f}%",
        )
        for d in rows_data
    ]
    print_table(
        "Figure 1: 20-token CoE request, switch vs execute",
        ["Platform", "Switch", "Execute", "Total", "Switch share"],
        rows,
    )
    sn40l, h100, a100 = rows_data
    # Paper shape: switching dominates the DGXs but not the SN40L.
    assert sn40l["switch_s"] / sn40l["total_s"] < 0.35
    assert a100["switch_s"] / a100["total_s"] > 0.5
    assert h100["switch_s"] / h100["total_s"] > 0.5
    # And the SN40L total is several times lower.
    assert a100["total_s"] / sn40l["total_s"] > 3
