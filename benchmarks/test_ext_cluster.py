"""Extension: scaling a CoE beyond one node.

The paper notes that multi-machine serving "introduces load balancing
challenges" (Section III-B). This extension quantifies them: sharded
dispatch under skewed expert popularity vs hot-expert replication.
"""

import random

import pytest

from benchmarks.conftest import print_table
from repro.coe.expert import build_samba_coe_library
from repro.systems.cluster import Cluster, replicate_hot_experts
from repro.systems.platforms import sn40l_platform

NUM_NODES = 4
REQUESTS = 80


def _zipf_stream(library, rng):
    weights = [1.0 / (rank + 1) for rank in range(len(library))]
    return [
        rng.choices(library.experts, weights=weights, k=1)[0]
        for _ in range(REQUESTS)
    ]


def run_cluster():
    library = build_samba_coe_library(40)
    rng = random.Random(11)
    stream = _zipf_stream(library, rng)
    counts = {}
    for expert in stream:
        counts[expert.name] = counts.get(expert.name, 0) + 1

    sharded = Cluster(sn40l_platform, library, num_nodes=NUM_NODES)
    sharded.dispatch(stream, output_tokens=10)

    replicated = Cluster(sn40l_platform, library, num_nodes=NUM_NODES)
    replicate_hot_experts(replicated, counts, top_n=4)
    replicated.dispatch(stream, output_tokens=10)

    return {
        "sharded": (sharded.makespan_s(), sharded.load_imbalance()),
        "replicated": (replicated.makespan_s(), replicated.load_imbalance()),
    }


@pytest.fixture(scope="module")
def results():
    return run_cluster()


def test_cluster_report(benchmark, results):
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    print_table(
        f"Extension: {REQUESTS} Zipf requests over {NUM_NODES} SN40L nodes",
        ["Placement", "Makespan", "Load imbalance"],
        [(name, f"{makespan:.2f} s", f"{imbalance:.2f}x")
         for name, (makespan, imbalance) in results.items()],
    )


def test_skew_imbalances_sharded_dispatch(results):
    _, imbalance = results["sharded"]
    assert imbalance > 1.2


def test_replication_improves_makespan_and_balance(results):
    sharded_makespan, sharded_imbalance = results["sharded"]
    repl_makespan, repl_imbalance = results["replicated"]
    assert repl_makespan < sharded_makespan
    assert repl_imbalance < sharded_imbalance
