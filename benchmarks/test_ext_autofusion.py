"""Extension: heuristic fusion policies vs the time-optimal DP.

The compiler's fusion heuristics (per-layer hints, resource-bounded
growth) are compared against the dynamic-programming optimum under the
same cost model, quantifying how much modeled time the heuristics leave
on the table.
"""

import pytest

from benchmarks.conftest import print_table
from repro.arch.config import SocketConfig
from repro.dataflow import fusion
from repro.dataflow.autofusion import optimal_fusion, plan_time
from repro.models.fftconv import fftconv_graph, monarch_fft_graph
from repro.models.transformer import TransformerConfig, decode_graph
from repro.perf.kernel_cost import ExecutionTarget, Orchestration

SMALL = TransformerConfig("small-1b", hidden=2048, layers=4, heads=16,
                          kv_heads=16, intermediate=5504, vocab=32000)


def run_autofusion():
    target = ExecutionTarget.from_socket(SocketConfig(), sockets=1)
    workloads = {
        "monarch-fft-1024": monarch_fft_graph(m=1024),
        "fftconv-32k": fftconv_graph(seqlen=1 << 15, channels=8),
        "small-1b-decode": decode_graph(SMALL, batch=1, context=512),
    }
    rows = []
    for name, graph in workloads.items():
        plans = {
            "unfused": fusion.unfused(graph),
            "per-layer": fusion.group_by_prefix(graph),
            "streaming": fusion.streaming_fusion(graph),
            "optimal": optimal_fusion(graph, target,
                                      max_segment=min(len(graph), 120)),
        }
        times = {
            policy: plan_time(plan, target, Orchestration.SOFTWARE)
            for policy, plan in plans.items()
        }
        rows.append((name, plans, times))
    return rows


@pytest.fixture(scope="module")
def results():
    return run_autofusion()


def test_autofusion_report(benchmark, results):
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    table = []
    for name, plans, times in results:
        optimum = times["optimal"]
        table.append((
            name,
            *(f"{times[p] * 1e3:.2f} ms ({times[p] / optimum:.2f}x)"
              for p in ("unfused", "per-layer", "streaming", "optimal")),
        ))
    print_table(
        "Extension: fusion heuristics vs time-optimal DP (1 socket, SO)",
        ["Workload", "Unfused", "Per-layer", "Streaming", "Optimal"],
        table,
    )


def test_optimal_is_a_lower_bound(results):
    for name, plans, times in results:
        optimum = times["optimal"]
        for policy, t in times.items():
            assert optimum <= t * 1.0001, (name, policy)


def test_heuristics_are_close_to_optimal(results):
    """The shipped streaming heuristic stays within 2.5x of the DP —
    large gaps would mean the heuristic is leaving real time on the
    table."""
    for name, plans, times in results:
        assert times["streaming"] / times["optimal"] < 2.5, name
