"""Ablation: weight-aware spilling vs weight-agnostic spilling.

Paper Section V-A: symbols are ranked by aggregate transfer footprint and
the smallest-bandwidth symbols spill to DDR first, with the observed
effect that "the weights receive highest priority to remain in HBM, while
activation symbols and other intermediate results can be spilled".

The ablation compiles llama2-7b prefill (batch 8, 4K sequence) onto a
single socket with a deliberately tight HBM budget and compares:

- the paper's policy (non-weights spill first), against
- the same footprint ranking *without* weight awareness.

Harm metric: a spilled weight is re-read from DDR on *every* subsequent
decode step, so the decode phase pays ``spilled_weight_bytes / ddr_bw``
per token, forever — while spilled prefill activations cost once.
"""

import pytest

from benchmarks.conftest import fmt_ms, print_table
from repro.core.compile import build_symbols
from repro.dataflow import fusion
from repro.memory.allocator import plan_memory, spill_order, weight_agnostic_spill_order
from repro.models.catalog import LLAMA2_7B
from repro.models.transformer import prefill_graph
from repro.units import GiB

DECODE_TOKENS = 20
DDR_BW = 200e9  # one socket's DDR bandwidth
HBM_BUDGET = 24 * GiB  # deliberately tight: forces ~6 GiB of spilling


def run_spill_ablation():
    graph = prefill_graph(LLAMA2_7B, batch=8, seq=4096, tp=1)
    plan = fusion.group_by_prefix(graph)
    symbols = build_symbols(plan)
    results = {}
    for name, ranker in (("weight-aware (paper)", spill_order),
                         ("weight-agnostic", weight_agnostic_spill_order)):
        memory = plan_memory(symbols, HBM_BUDGET, 1536 * GiB, spill_ranker=ranker)
        spilled_weight_bytes = sum(
            memory.placements[s].symbol.size_bytes
            for s in memory.spilled
            if memory.placements[s].symbol.is_weight
        )
        decode_penalty = DECODE_TOKENS * spilled_weight_bytes / DDR_BW
        results[name] = {
            "spilled": len(memory.spilled),
            "spilled_weight_bytes": spilled_weight_bytes,
            "decode_penalty_s": decode_penalty,
        }
    return results


@pytest.fixture(scope="module")
def ablation():
    return run_spill_ablation()


def test_spill_ablation_report(benchmark, ablation):
    benchmark.pedantic(lambda: ablation, rounds=1, iterations=1)
    print_table(
        f"Ablation: spill policy, llama2-7b prefill b8/4k on one socket "
        f"({HBM_BUDGET / GiB:.0f} GiB HBM budget)",
        ["Policy", "Symbols spilled", "Weight bytes spilled",
         f"{DECODE_TOKENS}-token decode penalty"],
        [(name, d["spilled"], f"{d['spilled_weight_bytes'] / 2**20:.1f} MiB",
          fmt_ms(d["decode_penalty_s"]))
         for name, d in ablation.items()],
    )


def test_paper_policy_spills_no_weights(ablation):
    assert ablation["weight-aware (paper)"]["spilled_weight_bytes"] == 0


def test_agnostic_policy_evicts_weights(ablation):
    assert ablation["weight-agnostic"]["spilled_weight_bytes"] > 0


def test_paper_policy_has_no_decode_penalty(ablation):
    paper = ablation["weight-aware (paper)"]["decode_penalty_s"]
    agnostic = ablation["weight-agnostic"]["decode_penalty_s"]
    assert paper == 0.0
    assert agnostic > 0.0
