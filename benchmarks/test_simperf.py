"""Sim-core performance benchmark: columnar and batched drains vs reference.

The tentpole claim of the drain fast paths is that cluster-scale sweeps
stop being the bottleneck: a 1M-request, 8-node cluster sim completes in
seconds on the columnar drain, where the event-by-event reference
configuration (``drain_mode="reference"`` — the pre-batching seed
semantics, with a recorded timeline) is several times slower. Emitted to ``BENCH_simperf.json`` at the repo root:

1. **Same-grid comparison** — the identical workload run through all
   three drain modes. The runs must agree on every simulated metric
   (makespan, events, tokens/s, completions — the byte-level proof
   lives in ``tests/coe/test_batched_equivalence.py``), and the
   columnar drain must clear ``MIN_SPEEDUP`` x the reference's
   events/sec (see the constant's note: the admission fast paths are
   shared by all drain modes, which shrank the reference's deficit).
2. **Headline** — the 1M-request, 8-node run per fast mode: wall-clock,
   events/sec, simulated makespan. The headline columnar run must also
   clear 3x the events/sec floor committed when the batched drain
   landed (PR 6) — the acceptance bound of the columnar PR.
3. **Regression gate** — batched and columnar events/sec must each stay
   within 30% of their committed baselines
   (``benchmarks/simperf_baseline.json``); the CI ``simperf-smoke`` job
   runs the shrunk grid against the same file's ``smoke`` entries. The
   ``admission`` point (the columnar grid under an admit-all deadline,
   where per-request routing math dominates) gates the cluster
   admission fast paths the same way, on requests/sec.

The node policy is ``affinity``, not ``overlap``: overlap's prefetch
decisions interleave with the queue, so the columnar drain falls back
to the batched loop there and the benchmark would never exercise the
columnar core (the fallback equivalence is pinned in the test suite).

Timing points run serially (``processes=1``): wall-clock measurements
must not contend with each other, so this module uses the sweep runner
for its deterministic seeding and ordering only.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_table
from repro.bench.sweep import SweepPoint, run_sweep
from repro.coe.cluster_engine import run_cluster
from repro.coe.engine import zipf_request_stream
from repro.coe.expert import build_samba_coe_library
from repro.systems.platforms import sn40l_platform

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

NUM_NODES = 8
NUM_EXPERTS = 48 if SMOKE else 150
GRID_REQUESTS = 2_000 if SMOKE else 25_000   #: same-grid comparison size
HEADLINE_REQUESTS = 100_000 if SMOKE else 1_000_000
OUTPUT_TOKENS = 20
ZIPF_ALPHA = 1.1
SEED = 1234
POLICY = "affinity"
NODE_POLICY = "affinity"  # overlap would fall back to the batched drain

#: Columnar vs reference events/sec floor on the same grid. The
#: original 10x bound dated from when the reference paid a quadratic
#: per-route backlog scan at admission; the admission fast paths
#: (single-owner routing, memoized exec estimates) are shared by every
#: drain mode, so the reference's residual deficit is the event-by-event
#: heap and the recorded timeline — about 3x at full size. The floor
#: sits below that so machine variance never trips it.
MIN_SPEEDUP = 2.0

#: Committed events/sec baselines; current must stay >= 70% of them.
BASELINE_PATH = Path(__file__).resolve().parent / "simperf_baseline.json"
BASELINE_RETENTION = 0.70

#: Columnar-PR acceptance: the headline columnar run must clear this
#: multiple of the events/sec floor committed when the batched drain
#: landed (the ``pr6`` entry of the baseline file).
COLUMNAR_ACCEPTANCE_MULTIPLE = 3.0

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_simperf.json"

POINTS = [
    {"run": "grid", "mode": "reference"},
    {"run": "grid", "mode": "batched"},
    {"run": "grid", "mode": "columnar"},
    {"run": "admission", "mode": "columnar"},
    {"run": "headline", "mode": "batched"},
    {"run": "headline", "mode": "columnar"},
]

#: A deadline no ETA can bust: the ``admission`` point uses it to force
#: the full admission arithmetic (route + backlog ETA + deadline
#: verdict) for every group without shedding any work.
ADMIT_ALL_DEADLINE_S = 1e9


def _simperf_point(point: SweepPoint) -> dict:
    """Run one timed configuration; module-level for the sweep runner.

    ``reference`` is the seed-equivalent configuration: one heap event
    per step, a recorded timeline, and fresh per-route backlog sums.
    ``batched`` and ``columnar`` are the fast drains with tracing off —
    what a sweep that only wants the report should use. The
    ``admission`` run is the columnar grid with deadline admission on:
    per-request routing math dominates that profile, so it gates the
    admission fast paths (single-owner routing, the memoized per-group
    exec estimate) specifically.
    """
    num_requests = (HEADLINE_REQUESTS if point["run"] == "headline"
                    else GRID_REQUESTS)
    reference = point["mode"] == "reference"
    admission = point["run"] == "admission"
    library = build_samba_coe_library(NUM_EXPERTS)
    requests = zipf_request_stream(
        library, num_requests, alpha=ZIPF_ALPHA, seed=SEED,
        output_tokens=OUTPUT_TOKENS,
    )
    start = time.perf_counter()
    report = run_cluster(
        sn40l_platform, library, requests, num_nodes=NUM_NODES,
        policy=POLICY, node_policy=NODE_POLICY,
        drain_mode=point["mode"], record_timeline=reference,
        deadline_s=ADMIT_ALL_DEADLINE_S if admission else None,
    )
    wall_s = time.perf_counter() - start
    return {
        "run": point["run"],
        "mode": point["mode"],
        "requests": num_requests,
        "wall_s": wall_s,
        "events_run": report.events_run,
        "events_per_s": report.events_run / wall_s if wall_s > 0 else 0.0,
        "requests_per_s": num_requests / wall_s if wall_s > 0 else 0.0,
        "makespan_s": report.makespan_s,
        "tokens_per_second": report.tokens_per_second,
        "completed": report.requests - report.rejected,
    }


@pytest.fixture(scope="module")
def simperf_results():
    results = run_sweep(_simperf_point, POINTS, base_seed=SEED, processes=1)
    return {f"{r['run']}_{r['mode']}": r for r in results}


@pytest.fixture(scope="module")
def baseline():
    data = json.loads(BASELINE_PATH.read_text())
    return data["smoke" if SMOKE else "full"]


@pytest.fixture(scope="module")
def pr6_baseline():
    data = json.loads(BASELINE_PATH.read_text())
    return data["pr6"]["smoke" if SMOKE else "full"]


def test_simperf_report(benchmark, simperf_results):
    benchmark.pedantic(lambda: simperf_results, rounds=1, iterations=1)
    rows = [
        [
            r["run"], r["mode"], f"{r['requests']:,}",
            f"{r['wall_s']:.2f} s", f"{r['events_run']:,}",
            f"{r['events_per_s']:,.0f}", f"{r['makespan_s']:.1f} s",
        ]
        for r in simperf_results.values()
    ]
    speedup = (simperf_results["grid_columnar"]["events_per_s"]
               / simperf_results["grid_reference"]["events_per_s"])
    print_table(
        f"Sim-core perf: {NUM_NODES} nodes, Zipf-{ZIPF_ALPHA}, "
        f"columnar/reference = {speedup:.1f}x events/sec on the same grid",
        ["Run", "Mode", "Requests", "Wall", "Events", "ev/s",
         "Sim makespan"],
        rows,
    )


def test_same_grid_simulated_metrics_identical(simperf_results):
    """Drain modes must change wall-clock only, never the simulation."""
    ref = simperf_results["grid_reference"]
    for mode in ("batched", "columnar"):
        fast = simperf_results[f"grid_{mode}"]
        assert ref["events_run"] == fast["events_run"], mode
        assert ref["makespan_s"] == fast["makespan_s"], mode
        assert ref["tokens_per_second"] == fast["tokens_per_second"], mode
        assert ref["completed"] == fast["completed"], mode


@pytest.mark.skipif(SMOKE, reason="speedup bound calibrated at full size")
def test_columnar_clears_min_speedup_vs_reference(simperf_results):
    ref = simperf_results["grid_reference"]
    columnar = simperf_results["grid_columnar"]
    speedup = columnar["events_per_s"] / ref["events_per_s"]
    assert speedup >= MIN_SPEEDUP, f"columnar/reference only {speedup:.1f}x"


@pytest.mark.skipif(SMOKE, reason="acceptance bound holds at full size only")
def test_columnar_headline_clears_pr6_acceptance(simperf_results,
                                                 pr6_baseline):
    """The columnar PR's acceptance: 3x the committed PR 6 floor."""
    current = simperf_results["headline_columnar"]["events_per_s"]
    floor = COLUMNAR_ACCEPTANCE_MULTIPLE * pr6_baseline["fast_events_per_s"]
    assert current >= floor, (
        f"columnar headline {current:,.0f} ev/s < {floor:,.0f} "
        f"({COLUMNAR_ACCEPTANCE_MULTIPLE}x the committed PR 6 floor "
        f"{pr6_baseline['fast_events_per_s']:,})"
    )


@pytest.mark.skipif(SMOKE, reason="headline runs at full size only")
def test_headline_million_requests_in_seconds(simperf_results):
    for mode in ("batched", "columnar"):
        headline = simperf_results[f"headline_{mode}"]
        assert headline["requests"] == 1_000_000, mode
        assert headline["completed"] == 1_000_000, mode
        assert headline["wall_s"] < 120.0, (
            f"1M-request {mode} sim took {headline['wall_s']:.0f}s"
        )


@pytest.mark.parametrize("mode", ["batched", "columnar"])
def test_events_per_sec_vs_committed_baseline(simperf_results, baseline,
                                              mode):
    """The CI regression gate: >30% below baseline fails the job."""
    current = simperf_results[f"grid_{mode}"]["events_per_s"]
    committed = baseline[f"{mode}_events_per_s"]
    floor = BASELINE_RETENTION * committed
    assert current >= floor, (
        f"{mode} events/sec regressed: {current:,.0f} < "
        f"{floor:,.0f} (70% of committed {committed:,})"
    )


def test_admission_point_sheds_nothing(simperf_results):
    """The admit-all deadline must never reject: the point times the
    admission arithmetic, not a shedding policy."""
    admission = simperf_results["admission_columnar"]
    assert admission["completed"] == admission["requests"]


def test_admission_requests_per_sec_vs_committed_baseline(simperf_results,
                                                          baseline):
    """Gate on the cluster admission fast paths: deadline admission runs
    the route + backlog-ETA math per request, so a regression in
    ``_route``/``_dispatch`` (single-owner bypass, memoized exec
    estimate) shows up here before anywhere else."""
    current = simperf_results["admission_columnar"]["requests_per_s"]
    committed = baseline["admission_requests_per_s"]
    floor = BASELINE_RETENTION * committed
    assert current >= floor, (
        f"admission requests/sec regressed: {current:,.0f} < "
        f"{floor:,.0f} (70% of committed {committed:,})"
    )


def test_emit_bench_json(simperf_results, baseline, pr6_baseline):
    payload = {
        "workload": {
            "experts": NUM_EXPERTS,
            "nodes": NUM_NODES,
            "grid_requests": GRID_REQUESTS,
            "headline_requests": HEADLINE_REQUESTS,
            "output_tokens": OUTPUT_TOKENS,
            "zipf_alpha": ZIPF_ALPHA,
            "seed": SEED,
            "policy": POLICY,
            "node_policy": NODE_POLICY,
            "smoke": SMOKE,
        },
        "same_grid": {
            "reference": simperf_results["grid_reference"],
            "batched": simperf_results["grid_batched"],
            "columnar": simperf_results["grid_columnar"],
            "speedup_events_per_s": {
                "batched_vs_reference": (
                    simperf_results["grid_batched"]["events_per_s"]
                    / simperf_results["grid_reference"]["events_per_s"]
                ),
                "columnar_vs_reference": (
                    simperf_results["grid_columnar"]["events_per_s"]
                    / simperf_results["grid_reference"]["events_per_s"]
                ),
            },
        },
        "admission": simperf_results["admission_columnar"],
        "headline": {
            "batched": simperf_results["headline_batched"],
            "columnar": simperf_results["headline_columnar"],
        },
        "baseline": {
            "batched_events_per_s": baseline["batched_events_per_s"],
            "columnar_events_per_s": baseline["columnar_events_per_s"],
            "admission_requests_per_s": baseline["admission_requests_per_s"],
            "retention_floor": BASELINE_RETENTION,
            "pr6_fast_events_per_s": pr6_baseline["fast_events_per_s"],
            "columnar_acceptance_multiple": COLUMNAR_ACCEPTANCE_MULTIPLE,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    assert OUTPUT_PATH.exists()
