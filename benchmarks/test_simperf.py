"""Sim-core performance benchmark: batched fast path vs the reference.

The tentpole claim of the vectorized sim core is that cluster-scale
sweeps stop being the bottleneck: a 1M-request, 8-node cluster sim
completes in seconds on the batched fast path, where the event-by-event
reference configuration (``event_batching=False`` — the pre-batching
seed semantics, with per-route backlog sums and a recorded timeline)
takes hours. Emitted to ``BENCH_simperf.json`` at the repo root:

1. **Same-grid comparison** — the identical workload run through both
   configurations. The two runs must agree on every simulated metric
   (makespan, events, tokens/s, completions — the byte-level proof
   lives in ``tests/coe/test_batched_equivalence.py``), and the fast
   path must clear >= 10x the reference's events/sec.
2. **Headline** — the 1M-request, 8-node fast-path run: wall-clock,
   events/sec, simulated makespan.
3. **Regression gate** — fast-path events/sec must stay within 30% of
   the committed baseline (``benchmarks/simperf_baseline.json``); the
   CI ``simperf-smoke`` job runs the shrunk grid against the same
   file's ``smoke`` entry.

Timing points run serially (``processes=1``): wall-clock measurements
must not contend with each other, so this module uses the sweep runner
for its deterministic seeding and ordering only.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_table
from repro.bench.sweep import SweepPoint, run_sweep
from repro.coe.cluster_engine import run_cluster
from repro.coe.engine import zipf_request_stream
from repro.coe.expert import build_samba_coe_library
from repro.systems.platforms import sn40l_platform

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

NUM_NODES = 8
NUM_EXPERTS = 48 if SMOKE else 150
GRID_REQUESTS = 2_000 if SMOKE else 25_000   #: same-grid comparison size
HEADLINE_REQUESTS = 100_000 if SMOKE else 1_000_000
OUTPUT_TOKENS = 20
ZIPF_ALPHA = 1.1
SEED = 1234
POLICY = "affinity"
NODE_POLICY = "overlap"

#: The >= 10x events/sec acceptance bound only applies at full size:
#: the reference's per-route backlog scan is quadratic in queue depth,
#: so its deficit grows with the grid (and shrinks on the smoke grid).
MIN_SPEEDUP = 10.0

#: Committed events/sec baseline; current must stay >= 70% of it.
BASELINE_PATH = Path(__file__).resolve().parent / "simperf_baseline.json"
BASELINE_RETENTION = 0.70

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_simperf.json"

POINTS = [
    {"run": "grid", "mode": "reference"},
    {"run": "grid", "mode": "fast"},
    {"run": "headline", "mode": "fast"},
]


def _simperf_point(point: SweepPoint) -> dict:
    """Run one timed configuration; module-level for the sweep runner.

    ``reference`` is the seed-equivalent configuration: one heap event
    per step, a recorded timeline, and fresh per-route backlog sums.
    ``fast`` is the batched default with tracing off — what a sweep
    that only wants the report should use.
    """
    num_requests = (HEADLINE_REQUESTS if point["run"] == "headline"
                    else GRID_REQUESTS)
    fast = point["mode"] == "fast"
    library = build_samba_coe_library(NUM_EXPERTS)
    requests = zipf_request_stream(
        library, num_requests, alpha=ZIPF_ALPHA, seed=SEED,
        output_tokens=OUTPUT_TOKENS,
    )
    start = time.perf_counter()
    report = run_cluster(
        sn40l_platform, library, requests, num_nodes=NUM_NODES,
        policy=POLICY, node_policy=NODE_POLICY,
        event_batching=fast, record_timeline=not fast,
    )
    wall_s = time.perf_counter() - start
    return {
        "run": point["run"],
        "mode": point["mode"],
        "requests": num_requests,
        "wall_s": wall_s,
        "events_run": report.events_run,
        "events_per_s": report.events_run / wall_s if wall_s > 0 else 0.0,
        "makespan_s": report.makespan_s,
        "tokens_per_second": report.tokens_per_second,
        "completed": report.requests - report.rejected,
    }


@pytest.fixture(scope="module")
def simperf_results():
    reference, fast, headline = run_sweep(
        _simperf_point, POINTS, base_seed=SEED, processes=1,
    )
    return {"reference": reference, "fast": fast, "headline": headline}


@pytest.fixture(scope="module")
def baseline():
    data = json.loads(BASELINE_PATH.read_text())
    return data["smoke" if SMOKE else "full"]


def test_simperf_report(benchmark, simperf_results):
    benchmark.pedantic(lambda: simperf_results, rounds=1, iterations=1)
    rows = [
        [
            r["run"], r["mode"], f"{r['requests']:,}",
            f"{r['wall_s']:.2f} s", f"{r['events_run']:,}",
            f"{r['events_per_s']:,.0f}", f"{r['makespan_s']:.1f} s",
        ]
        for r in simperf_results.values()
    ]
    speedup = (simperf_results["fast"]["events_per_s"]
               / simperf_results["reference"]["events_per_s"])
    print_table(
        f"Sim-core perf: {NUM_NODES} nodes, Zipf-{ZIPF_ALPHA}, "
        f"fast/reference = {speedup:.1f}x events/sec on the same grid",
        ["Run", "Mode", "Requests", "Wall", "Events", "ev/s",
         "Sim makespan"],
        rows,
    )


def test_same_grid_simulated_metrics_identical(simperf_results):
    """Batching must change wall-clock only, never the simulation."""
    ref, fast = simperf_results["reference"], simperf_results["fast"]
    assert ref["events_run"] == fast["events_run"]
    assert ref["makespan_s"] == fast["makespan_s"]
    assert ref["tokens_per_second"] == fast["tokens_per_second"]
    assert ref["completed"] == fast["completed"]


@pytest.mark.skipif(SMOKE, reason="speedup bound holds at full size "
                    "(the reference's admission scan is quadratic)")
def test_fast_path_at_least_10x_events_per_sec(simperf_results):
    ref, fast = simperf_results["reference"], simperf_results["fast"]
    speedup = fast["events_per_s"] / ref["events_per_s"]
    assert speedup >= MIN_SPEEDUP, f"fast/reference only {speedup:.1f}x"


@pytest.mark.skipif(SMOKE, reason="headline runs at full size only")
def test_headline_million_requests_in_seconds(simperf_results):
    headline = simperf_results["headline"]
    assert headline["requests"] == 1_000_000
    assert headline["completed"] == 1_000_000
    assert headline["wall_s"] < 120.0, (
        f"1M-request sim took {headline['wall_s']:.0f}s"
    )


def test_events_per_sec_vs_committed_baseline(simperf_results, baseline):
    """The CI regression gate: >30% below baseline fails the job."""
    current = simperf_results["fast"]["events_per_s"]
    floor = BASELINE_RETENTION * baseline["fast_events_per_s"]
    assert current >= floor, (
        f"fast-path events/sec regressed: {current:,.0f} < "
        f"{floor:,.0f} (70% of committed {baseline['fast_events_per_s']:,})"
    )


def test_emit_bench_json(simperf_results, baseline):
    payload = {
        "workload": {
            "experts": NUM_EXPERTS,
            "nodes": NUM_NODES,
            "grid_requests": GRID_REQUESTS,
            "headline_requests": HEADLINE_REQUESTS,
            "output_tokens": OUTPUT_TOKENS,
            "zipf_alpha": ZIPF_ALPHA,
            "seed": SEED,
            "policy": POLICY,
            "node_policy": NODE_POLICY,
            "smoke": SMOKE,
        },
        "same_grid": {
            "reference": simperf_results["reference"],
            "fast": simperf_results["fast"],
            "speedup_events_per_s": (
                simperf_results["fast"]["events_per_s"]
                / simperf_results["reference"]["events_per_s"]
            ),
        },
        "headline": simperf_results["headline"],
        "baseline": {
            "fast_events_per_s": baseline["fast_events_per_s"],
            "retention_floor": BASELINE_RETENTION,
        },
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    assert OUTPUT_PATH.exists()
