"""Figure 11: ratio of kernel calls, unfused vs fused.

The paper reports ratios like 11x for llama2-7b prefill, with the most
aggressive fusion on FlashFFTConv and sparseGPT, and large ratios on
llama2-70b driven by model size. Our unfused operator counts are at eager
PyTorch granularity, so absolute ratios sit somewhat above the paper's;
the ordering and magnitude checks below encode the paper's shape.
"""

import pytest

from benchmarks.conftest import print_table
from benchmarks.workloads import table2_workloads
from repro.dataflow import fusion


def run_fig11():
    results = []
    for wl in table2_workloads():
        graph = wl.build()
        if wl.phase == "fft":
            fused = fusion.streaming_fusion(graph)
        else:
            fused = fusion.group_by_prefix(graph)
        results.append(
            {
                "name": wl.name,
                "phase": wl.phase,
                "unfused_kernels": len(graph),
                "fused_kernels": fused.num_kernels,
                "ratio": fusion.kernel_call_ratio(graph, fused),
            }
        )
    return results


@pytest.fixture(scope="module")
def fig11():
    return run_fig11()


def test_fig11_report(benchmark, fig11):
    benchmark.pedantic(lambda: fig11, rounds=1, iterations=1)
    rows = [
        (d["name"], d["unfused_kernels"], d["fused_kernels"], f"{d['ratio']:.1f}x")
        for d in fig11
    ]
    print_table(
        "Figure 11: kernel calls, unfused vs fused",
        ["Benchmark", "Unfused kernels", "Fused kernels", "Ratio"],
        rows,
    )


def test_ratios_are_order_ten_or_more(fig11):
    """Streaming dataflow fuses 20+ operators per kernel (paper Section
    VIII-3), so every benchmark should fuse by an order of magnitude."""
    for d in fig11:
        if d["phase"] != "fft":
            assert d["ratio"] >= 10, d["name"]


def test_fft_fuses_completely(fig11):
    fft = next(d for d in fig11 if d["phase"] == "fft")
    assert fft["fused_kernels"] == 1


def test_bigger_models_launch_more_unfused_kernels(fig11):
    by_name = {d["name"]: d for d in fig11}
    assert (
        by_name["llama2-70b-4k-decode"]["unfused_kernels"]
        > by_name["llama2-7b-4k-decode"]["unfused_kernels"]
    )
