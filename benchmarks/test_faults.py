"""Fault-tolerance benchmark: goodput retention through a node crash.

A scale-out CoE deployment is only as good as its worst day. This
benchmark drives the 8-node Zipf-1.1 workload through ``repro.serve``
twice — once clean, once with a deterministic fault schedule that kills
one node a quarter of the way into the clean makespan — and measures
what the recovery machinery (heartbeat detection, exactly-once
re-dispatch, replica promotion) preserves. Emitted to
``BENCH_faults.json`` at the repo root:

1. **Goodput retention** — faulty-run goodput (completed tokens/s) as a
   fraction of the clean run's tokens/s. Acceptance: >= 80% after
   losing 1 of 8 nodes.
2. **Recovery time** — crash to last orphaned-expert promotion copy,
   bounded by one heartbeat plus the DDR->HBM copies.
3. **Determinism** — the same schedule must reproduce the same report.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import json
import os
from pathlib import Path

import pytest

import repro
from benchmarks.conftest import fmt_ms, print_table
from repro.bench.sweep import SweepPoint, run_sweep
from repro.coe.engine import zipf_request_stream
from repro.coe.expert import build_samba_coe_library
from repro.systems.platforms import sn40l_platform

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

NUM_NODES = 8
NUM_EXPERTS = 32 if SMOKE else 64
NUM_REQUESTS = 128 if SMOKE else 256
OUTPUT_TOKENS = 20
ZIPF_ALPHA = 1.1
SEED = 1234
CRASH_FRACTION = 0.25  # of the clean makespan
HEARTBEAT_S = 0.05

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_faults.json"


def _build_workload():
    library = build_samba_coe_library(NUM_EXPERTS)
    requests = zipf_request_stream(
        library, NUM_REQUESTS, alpha=ZIPF_ALPHA, seed=SEED,
        output_tokens=OUTPUT_TOKENS,
    )
    return library, requests


def _fault_point(point: SweepPoint):
    """One scenario (clean / faulty); module-level so the sweep
    runner's fork pool can pickle it. The faulty point replays the
    clean run locally to place the crash at the same fraction of the
    clean makespan — both points stay independent, so the pair can fan
    out, at the cost of one cheap duplicate clean run."""
    library, requests = _build_workload()
    clean = repro.serve(
        sn40l_platform, library, requests,
        repro.ServeConfig(num_nodes=NUM_NODES),
    )
    if point["run"] == "clean":
        return clean
    specs = [f"crash:node3:{CRASH_FRACTION * clean.makespan_s!r}"]
    return repro.serve(
        sn40l_platform, library, requests,
        repro.ServeConfig(num_nodes=NUM_NODES, faults=specs,
                          heartbeat_s=HEARTBEAT_S),
    )


@pytest.fixture(scope="module")
def workload():
    return _build_workload()


@pytest.fixture(scope="module")
def fault_reports():
    clean, faulty = run_sweep(
        _fault_point, [{"run": "clean"}, {"run": "faulty"}], base_seed=SEED,
    )
    return clean, faulty


@pytest.fixture(scope="module")
def clean_report(fault_reports):
    return fault_reports[0]


@pytest.fixture(scope="module")
def fault_specs(clean_report):
    return [f"crash:node3:{CRASH_FRACTION * clean_report.makespan_s!r}"]


@pytest.fixture(scope="module")
def faulty_report(fault_reports):
    return fault_reports[1]


def test_fault_report(benchmark, clean_report, faulty_report):
    benchmark.pedantic(lambda: faulty_report, rounds=1, iterations=1)
    rows = [
        ["clean", f"{clean_report.tokens_per_second:.1f}",
         f"{clean_report.goodput_tokens_per_second:.1f}",
         fmt_ms(clean_report.makespan_s), "-", "-", "-"],
        ["1-node crash", f"{faulty_report.tokens_per_second:.1f}",
         f"{faulty_report.goodput_tokens_per_second:.1f}",
         fmt_ms(faulty_report.makespan_s),
         f"{faulty_report.availability:.3f}",
         fmt_ms(faulty_report.recovery_s),
         faulty_report.redispatched_groups],
    ]
    print_table(
        f"Fault tolerance: {NUM_REQUESTS} Zipf-{ZIPF_ALPHA} requests, "
        f"{NUM_NODES} nodes, crash at {CRASH_FRACTION:.0%} of makespan",
        ["Run", "tok/s", "goodput", "makespan", "avail", "recovery",
         "redisp"],
        rows,
    )


def test_goodput_retention_at_least_80pct(clean_report, faulty_report):
    """Acceptance: losing 1 of 8 nodes mid-run must keep goodput at
    80%+ of the clean run — recovery, not collapse."""
    retention = (faulty_report.goodput_tokens_per_second
                 / clean_report.tokens_per_second)
    assert retention >= 0.80, f"goodput retention {retention:.1%}"


def test_no_request_lost(faulty_report):
    assert faulty_report.requests == NUM_REQUESTS
    assert faulty_report.rejected == 0
    assert faulty_report.redispatched_groups > 0


def test_recovery_time_bounded(faulty_report):
    """Crash -> recovered must fit in one heartbeat (detection) plus a
    generous allowance for the promotion DDR->HBM copies."""
    assert faulty_report.crashes == 1
    assert faulty_report.recovery_s <= HEARTBEAT_S + 0.2


def test_outage_visible_in_trace(faulty_report):
    names = [s.name for s in faulty_report.timeline.spans()
             if s.lane == "node3/faults"]
    assert any(n.startswith("crash:") for n in names)
    assert any(n.startswith("recovery:") for n in names)


def test_fault_run_is_deterministic(workload, fault_specs, faulty_report):
    library, requests = workload
    again = repro.serve(
        sn40l_platform, library, requests,
        repro.ServeConfig(num_nodes=NUM_NODES, faults=fault_specs,
                          heartbeat_s=HEARTBEAT_S),
    )
    assert again.to_dict() == faulty_report.to_dict()


def test_emit_bench_json(clean_report, faulty_report, fault_specs):
    retention = (faulty_report.goodput_tokens_per_second
                 / clean_report.tokens_per_second)
    payload = {
        "workload": {
            "experts": NUM_EXPERTS,
            "requests": NUM_REQUESTS,
            "output_tokens": OUTPUT_TOKENS,
            "zipf_alpha": ZIPF_ALPHA,
            "seed": SEED,
            "num_nodes": NUM_NODES,
            "heartbeat_s": HEARTBEAT_S,
            "faults": fault_specs,
            "smoke": SMOKE,
        },
        "clean": {k: v for k, v in clean_report.to_dict().items()
                  if k != "nodes"},
        "faulty": faulty_report.to_dict(),
        "goodput_retention": retention,
        "recovery_s": faulty_report.recovery_s,
        "availability": faulty_report.availability,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    assert OUTPUT_PATH.exists()
