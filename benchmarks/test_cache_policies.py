"""HBM expert-cache policy sweep against the offline Belady bound.

The paper's Section V-B runtime manages its HBM expert region as an LRU
cache. This benchmark measures how much of the attainable hit rate LRU
actually captures on the SN40L node model, emitted to
``BENCH_cache.json`` at the repo root:

1. **Zipf-1.1 sweep** — the skewed steady-state workload every serving
   benchmark in this repo uses. The Belady oracle (replayed from the
   recorded demand trace) upper-bounds every online policy; the
   frequency-aware heuristics close part of the LRU-to-Belady gap.
2. **Drifting-hot-set sweep** — a slowly rotating hot set with uniform
   scan pollution, the adversarial-for-LRU workload: one cold scan
   evicts a hot expert LRU just served, while LFU/GDSF frequency
   protection keeps the hot set resident.

Methodology: the node runs the ``fifo`` scheduling policy so the demand
access sequence is the coalesced group order — identical for every cache
policy, which is what makes the Belady replay (trace recorded under LRU)
a valid bound for all of them. HBM is reserved down to a
``CACHE_EXPERTS``-slot expert region to put the cache under pressure.
Everything is deterministic: the emitted payload is asserted
byte-identical across two same-seed runs.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import json
import os
import random
from pathlib import Path

import pytest

from benchmarks.conftest import fmt_ms, print_table
from repro.bench.sweep import SweepPoint, run_sweep
from repro.coe.cache import CACHE_POLICIES, BeladyPolicy
from repro.coe.engine import EngineRequest, ServingEngine, zipf_request_stream
from repro.coe.expert import build_samba_coe_library
from repro.systems.platforms import sn40l_platform

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

NUM_EXPERTS = 32 if SMOKE else 48
NUM_REQUESTS = 160 if SMOKE else 400
DRIFT_REQUESTS = 192 if SMOKE else 480
CACHE_EXPERTS = 8       #: expert slots in the pressured HBM region
HOT_SET = 8             #: drifting workload's hot-set size
PHASE = 40              #: requests per drift phase (one member rotates)
HOT_FRACTION = 0.85     #: hot draws; the rest is uniform scan pollution
OUTPUT_TOKENS = 20
ZIPF_ALPHA = 1.1
SEED = 1234
MAX_BATCH = 4

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cache.json"


def _library():
    return build_samba_coe_library(NUM_EXPERTS)


def _reserved_bytes(platform, library):
    """Reserve HBM down to a CACHE_EXPERTS-slot expert region."""
    expert_bytes = library.experts[0].weight_bytes
    budget = CACHE_EXPERTS * expert_bytes + expert_bytes // 2
    return platform.hbm_capacity_bytes - budget


def drifting_hot_set_stream(
    library,
    num_requests,
    hot_set=HOT_SET,
    phase=PHASE,
    hot_fraction=HOT_FRACTION,
    seed=SEED,
    output_tokens=OUTPUT_TOKENS,
):
    """A rotating hot set with uniform scan pollution.

    The hot set starts as experts ``0..hot_set-1``; each ``phase``
    requests, its oldest member is replaced by the next never-hot expert
    (wrapping), so popularity drifts slowly. Each request draws from the
    current hot set with probability ``hot_fraction`` and uniformly from
    the whole library otherwise (the scans that pollute an LRU cache).
    Deterministic under ``seed``.
    """
    rng = random.Random(seed)
    experts = library.experts
    hot = list(range(hot_set))
    next_new = hot_set
    requests = []
    for i in range(num_requests):
        if i > 0 and i % phase == 0:
            hot.pop(0)
            hot.append(next_new % len(experts))
            next_new += 1
        if rng.random() < hot_fraction:
            idx = hot[rng.randrange(len(hot))]
        else:
            idx = rng.randrange(len(experts))
        requests.append(
            EngineRequest(
                request_id=i, expert=experts[idx],
                output_tokens=output_tokens,
            )
        )
    return requests


def _run_policy(library, requests, cache_policy):
    platform = sn40l_platform()
    engine = ServingEngine(
        platform, library, policy="fifo", max_batch=MAX_BATCH,
        reserved_hbm_bytes=_reserved_bytes(platform, library),
        cache_policy=cache_policy,
    )
    report = engine.run(requests)
    stats = engine.server.runtime.stats
    return {
        "cache_policy": report.cache_policy,
        "demand_hit_rate": report.demand_hit_rate,
        "hits": stats.hits,
        "misses": stats.misses,
        "switch_time_s": stats.switch_time_s,
        "bytes_up": stats.bytes_up,
        "evictions": stats.evictions,
        "makespan_s": report.makespan_s,
        "tokens_per_second": report.tokens_per_second,
    }, engine.server.runtime


def _sweep(library, requests):
    """Every online policy plus the Belady bound, on one workload."""
    results = {}
    lru_result, lru_runtime = _run_policy(library, requests, "lru")
    results["lru"] = lru_result
    for name in CACHE_POLICIES:
        if name == "lru":
            continue
        results[name], _ = _run_policy(library, requests, name)
    oracle = BeladyPolicy(lru_runtime.demand_trace)
    results["belady"], _ = _run_policy(library, requests, oracle)
    return results


def _workload_point(point: SweepPoint):
    """One workload's full cache-policy sweep (every online policy plus
    Belady); module-level so the sweep runner's fork pool can pickle
    it. Streams rebuild from the fixed ``SEED`` inside the worker."""
    library = _library()
    if point["workload"] == "zipf":
        requests = zipf_request_stream(
            library, NUM_REQUESTS, alpha=ZIPF_ALPHA, seed=SEED,
            output_tokens=OUTPUT_TOKENS,
        )
    else:
        requests = drifting_hot_set_stream(library, DRIFT_REQUESTS)
    return point["workload"], _sweep(library, requests)


@pytest.fixture(scope="module")
def cache_sweeps():
    """Both workloads, run twice to pin byte-level determinism."""
    axes = {"workload": ("zipf", "drift")}
    first = dict(run_sweep(_workload_point, axes, base_seed=SEED))
    second = dict(run_sweep(_workload_point, axes, base_seed=SEED))
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    ), "cache-policy sweep is not deterministic across same-seed runs"
    return first


def test_cache_policy_table(benchmark, cache_sweeps):
    benchmark.pedantic(lambda: cache_sweeps, rounds=1, iterations=1)
    for workload, results in cache_sweeps.items():
        rows = [
            [
                name,
                f"{r['demand_hit_rate']:.3f}",
                f"{r['hits']}/{r['hits'] + r['misses']}",
                f"{r['switch_time_s']:.3f} s",
                r["evictions"],
                fmt_ms(r["makespan_s"]),
            ]
            for name, r in results.items()
        ]
        print_table(
            f"Cache policies, {workload} workload "
            f"({CACHE_EXPERTS}-expert HBM region, {NUM_EXPERTS} experts)",
            ["Policy", "hit rate", "hits", "demand switch", "evict",
             "makespan"],
            rows,
        )


def test_belady_bounds_every_online_policy(cache_sweeps):
    """No online policy may beat the clairvoyant oracle on its trace."""
    for workload, results in cache_sweeps.items():
        bound = results["belady"]["demand_hit_rate"]
        for name in CACHE_POLICIES:
            assert results[name]["demand_hit_rate"] <= bound + 1e-12, (
                workload, name
            )


def test_zipf_ladder_belady_best_heuristic_lru(cache_sweeps):
    """Acceptance: belady >= best non-LRU heuristic >= lru on Zipf-1.1."""
    zipf = cache_sweeps["zipf"]
    best_heuristic = max(
        zipf[name]["demand_hit_rate"]
        for name in CACHE_POLICIES if name != "lru"
    )
    assert zipf["belady"]["demand_hit_rate"] >= best_heuristic
    assert best_heuristic >= zipf["lru"]["demand_hit_rate"]


def test_drift_some_policy_beats_lru_on_switch_time(cache_sweeps):
    """Acceptance: under the drifting hot set, frequency/cost-aware
    eviction spends strictly less total demand switch time than LRU."""
    drift = cache_sweeps["drift"]
    lru_switch = drift["lru"]["switch_time_s"]
    best = min(
        drift[name]["switch_time_s"]
        for name in CACHE_POLICIES if name != "lru"
    )
    assert best < lru_switch


def test_emit_bench_json(cache_sweeps):
    payload = {
        "workload": {
            "experts": NUM_EXPERTS,
            "cache_experts": CACHE_EXPERTS,
            "zipf": {"requests": NUM_REQUESTS, "alpha": ZIPF_ALPHA},
            "drift": {
                "requests": DRIFT_REQUESTS,
                "hot_set": HOT_SET,
                "phase": PHASE,
                "hot_fraction": HOT_FRACTION,
            },
            "seed": SEED,
            "max_batch": MAX_BATCH,
            "node_policy": "fifo",
            "policies": list(CACHE_POLICIES) + ["belady"],
            "smoke": SMOKE,
        },
        "sweeps": cache_sweeps,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    assert OUTPUT_PATH.exists()
