"""Figure 10: speedups over the unfused baseline across Table II.

Three configurations per benchmark (paper Section VI-A):

- Unfused: one kernel per PyTorch-level operator, intermediates
  materialised off-chip, software-orchestrated launches,
- Fused + Software Orchestrated (SO): streaming-dataflow fusion (whole
  decoder layers / whole FFT pipelines per kernel), host-scheduled,
- Fused + Hardware Orchestrated (HO): same kernels, AGCU-scheduled.

Paper shapes this harness must reproduce: fusion speedups from ~1.5x
(prefill/train) up to ~13x (FlashFFTConv); HO adds 1.4x+ on decode but
<=1.1x on prefill/train; FlashFFTConv is insensitive to orchestration
(a single kernel launch).
"""

import pytest

from benchmarks.conftest import fmt_x, print_table
from benchmarks.workloads import table2_workloads
from repro.arch.config import SocketConfig
from repro.dataflow import fusion
from repro.perf.kernel_cost import ExecutionTarget, Orchestration, cost_plan


def run_fig10():
    results = []
    for wl in table2_workloads():
        graph = wl.build()
        target = ExecutionTarget.from_socket(SocketConfig(), sockets=wl.sockets)
        if wl.phase == "fft":
            fused = fusion.streaming_fusion(graph)
        else:
            fused = fusion.group_by_prefix(graph)
        unf = cost_plan(fusion.unfused(graph), target, Orchestration.SOFTWARE)
        so = cost_plan(fused, target, Orchestration.SOFTWARE)
        ho = cost_plan(fused, target, Orchestration.HARDWARE)
        results.append(
            {
                "name": wl.name,
                "phase": wl.phase,
                "unfused_s": unf.total_s,
                "so_s": so.total_s,
                "ho_s": ho.total_s,
                "fusion_x": unf.total_s / so.total_s,
                "ho_x": so.total_s / ho.total_s,
                "total_x": unf.total_s / ho.total_s,
            }
        )
    return results


@pytest.fixture(scope="module")
def fig10():
    return run_fig10()


def test_fig10_report(benchmark, fig10):
    benchmark.pedantic(lambda: fig10, rounds=1, iterations=1)
    rows = [
        (
            d["name"],
            f"{d['unfused_s'] * 1e3:9.2f}",
            f"{d['so_s'] * 1e3:9.2f}",
            f"{d['ho_s'] * 1e3:9.2f}",
            fmt_x(d["fusion_x"]),
            fmt_x(d["ho_x"]),
            fmt_x(d["total_x"]),
        )
        for d in fig10
    ]
    print_table(
        "Figure 10: speedup over unfused baseline (times in ms)",
        ["Benchmark", "Unfused", "Fused+SO", "Fused+HO",
         "Fusion", "HO extra", "Total"],
        rows,
    )


def test_fusion_speedups_span_2x_to_13x(fig10):
    """Paper abstract: 'speedups ranging from 2x to 13x'."""
    speedups = [d["total_x"] for d in fig10]
    assert min(speedups) >= 1.5
    assert max(speedups) >= 8.0


def test_fft_has_highest_fusion_speedup(fig10):
    fft = next(d for d in fig10 if d["phase"] == "fft")
    assert fft["fusion_x"] == max(d["fusion_x"] for d in fig10)
    assert fft["fusion_x"] >= 8.0  # paper: 13x


def test_prefill_and_train_fusion_band(fig10):
    """Paper: prefill/train fusion speedups in the 1.5x-3x range.

    Our unfused baseline materialises attention scores at eager-PyTorch
    granularity, which puts several prefill ratios at the top of the
    paper's band; the pin allows up to 4.8x."""
    for d in fig10:
        if d["phase"] in ("prefill", "train"):
            assert 1.3 <= d["fusion_x"] <= 4.8, d["name"]


def test_ho_helps_decode_not_prefill(fig10):
    """Paper: HO gives 1.4x-8x on decode, at most ~1.1x on prefill/train.

    Exception: llava's 576-token vision tower runs 24 sub-millisecond
    layer kernels, so its *prefill* is launch-bound and HO legitimately
    helps more there (the paper does not break llava out by phase)."""
    for d in fig10:
        if d["phase"] == "decode":
            assert d["ho_x"] >= 1.05, d["name"]
        elif d["phase"] in ("prefill", "train"):
            limit = 1.5 if "llava" in d["name"] else 1.15
            assert d["ho_x"] <= limit, d["name"]


def test_decode_ho_band(fig10):
    """At least one decode benchmark gains >=1.4x from HO (paper band)."""
    decode_gains = [d["ho_x"] for d in fig10 if d["phase"] == "decode"]
    assert max(decode_gains) >= 1.4


def test_fft_insensitive_to_orchestration(fig10):
    """The fused FFT is a single kernel: orchestration barely matters
    (paper: 'the same duration with both kernel scheduling methods')."""
    fft = next(d for d in fig10 if d["phase"] == "fft")
    assert fft["ho_x"] <= 1.25
