"""The Table II benchmark suite, shared by the Figure 10/11 harnesses.

Each entry is (name, graph builder, sockets): the paper evaluates all
benchmarks on eight SN40L sockets except FlashFFTConv, which runs on one.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple

from repro.dataflow.graph import DataflowGraph
from repro.models.catalog import (
    BLOOM_176B,
    FALCON_40B,
    LLAMA2_7B,
    LLAMA2_70B,
    MISTRAL_7B,
)
from repro.models.fftconv import fftconv_graph
from repro.models.llava import llava_decode_graph, llava_prefill_graph
from repro.models.sparse import sparsegpt_train_graph
from repro.models.transformer import decode_graph, prefill_graph, train_graph


class Workload(NamedTuple):
    name: str
    build: Callable[[], DataflowGraph]
    sockets: int
    phase: str  # "prefill" | "decode" | "train" | "fft"


def table2_workloads() -> List[Workload]:
    """All benchmark configurations of the paper's Table II."""
    tp = 8
    return [
        Workload("llama2-7b-4k-prefill",
                 lambda: prefill_graph(LLAMA2_7B, 1, 4096, tp), 8, "prefill"),
        Workload("llama2-7b-4k-decode",
                 lambda: decode_graph(LLAMA2_7B, 1, 4096, tp), 8, "decode"),
        Workload("llama2-7b-4k-train",
                 lambda: train_graph(LLAMA2_7B, 1, 4096, tp), 8, "train"),
        Workload("sparsegpt-13b-2k-train",
                 lambda: sparsegpt_train_graph(1, 2048, tp), 8, "train"),
        Workload("llama2-70b-4k-prefill",
                 lambda: prefill_graph(LLAMA2_70B, 1, 4096, tp), 8, "prefill"),
        Workload("llama2-70b-4k-decode",
                 lambda: decode_graph(LLAMA2_70B, 1, 4096, tp), 8, "decode"),
        Workload("bloom-176b-8k-prefill",
                 lambda: prefill_graph(BLOOM_176B, 1, 8192, tp), 8, "prefill"),
        Workload("bloom-176b-8k-decode",
                 lambda: decode_graph(BLOOM_176B, 1, 8192, tp), 8, "decode"),
        Workload("mistral-7b-4k-prefill",
                 lambda: prefill_graph(MISTRAL_7B, 1, 4096, tp), 8, "prefill"),
        Workload("mistral-7b-4k-decode",
                 lambda: decode_graph(MISTRAL_7B, 1, 4096, tp), 8, "decode"),
        Workload("falcon-40b-2k-prefill",
                 lambda: prefill_graph(FALCON_40B, 1, 2048, tp), 8, "prefill"),
        Workload("falcon-40b-2k-decode",
                 lambda: decode_graph(FALCON_40B, 1, 2048, tp), 8, "decode"),
        Workload("llava1.5-7b-prefill",
                 lambda: llava_prefill_graph(1, 512, tp), 8, "prefill"),
        Workload("llava1.5-7b-decode",
                 lambda: llava_decode_graph(1, 1088, tp), 8, "decode"),
        Workload("flashfftconv-1m",
                 lambda: fftconv_graph(1 << 20, channels=64), 1, "fft"),
    ]
