"""Table III: Samba-CoE performance summary vs DGX A100 and DGX H100.

Regenerates every row of the paper's summary table:

    Overall speedup, BS=8, 20 output tokens   (paper: 6.6x / 3.7x)
    Overall speedup, BS=1, 20 output tokens   (paper: 4.8x / 2.8x)
    Expert speedup, BS=1, 20 output tokens    (paper: 2.0x / 1.5x)
    Overall speedup, BS=8, 200 output tokens  (paper: 4.2x / 2.7x)
    Overall speedup, BS=1, 200 output tokens  (paper: 3.9x / 2.6x)
    Expert speedup, BS=1, 200 output tokens   (paper: 3.2x / 2.3x)
    Model switching time                      (paper: 31x / 15x)
    > 150 experts                             (paper: DGX OOM)

"Overall" includes router + expert switch + expert execution with >50
experts deployed (every expert request is a cold switch, the paper's
Figure 1 scenario); "Expert" is expert execution alone.
"""

import pytest

from benchmarks.conftest import fmt_x, print_table
from repro.coe.expert import build_samba_coe_library
from repro.coe.serving import ExpertServer
from repro.models.catalog import LLAMA2_7B
from repro.systems.platforms import (
    dgx_a100_platform,
    dgx_h100_platform,
    sn40l_platform,
)

PAPER = {
    ("overall", 8, 20): (6.6, 3.7),
    ("overall", 1, 20): (4.8, 2.8),
    ("expert", 1, 20): (2.0, 1.5),
    ("overall", 8, 200): (4.2, 2.7),
    ("overall", 1, 200): (3.9, 2.6),
    ("expert", 1, 200): (3.2, 2.3),
    ("switch", 1, 0): (31.0, 15.0),
}


def _overall_time(platform, library, batch, tokens):
    """One cold batch: router + switches + executions."""
    server = ExpertServer(platform, library)
    experts = library.experts[:batch]
    return server.serve_experts(experts, output_tokens=tokens).total_s


def _expert_time(platform, library, tokens):
    server = ExpertServer(platform, library)
    prefill, decode = server.expert_time(library.experts[0], tokens, 256)
    return prefill + decode


def run_table3():
    library = build_samba_coe_library(150)
    sn, a100, h100 = sn40l_platform(), dgx_a100_platform(), dgx_h100_platform()
    results = {}
    for batch, tokens in ((8, 20), (1, 20), (8, 200), (1, 200)):
        times = {p.name: _overall_time(p, library, batch, tokens)
                 for p in (sn, a100, h100)}
        results[("overall", batch, tokens)] = (
            times["DGX-A100"] / times["SN40L-Node"],
            times["DGX-H100"] / times["SN40L-Node"],
        )
    for tokens in (20, 200):
        times = {p.name: _expert_time(p, library, tokens)
                 for p in (sn, a100, h100)}
        results[("expert", 1, tokens)] = (
            times["DGX-A100"] / times["SN40L-Node"],
            times["DGX-H100"] / times["SN40L-Node"],
        )
    expert_bytes = LLAMA2_7B.weight_bytes
    results[("switch", 1, 0)] = (
        a100.switch_time(expert_bytes) / sn.switch_time(expert_bytes),
        h100.switch_time(expert_bytes) / sn.switch_time(expert_bytes),
    )
    return results


@pytest.fixture(scope="module")
def table3():
    return run_table3()


LABELS = {
    ("overall", 8, 20): "Overall speedup, BS=8, 20 tokens",
    ("overall", 1, 20): "Overall speedup, BS=1, 20 tokens",
    ("expert", 1, 20): "Expert speedup, BS=1, 20 tokens",
    ("overall", 8, 200): "Overall speedup, BS=8, 200 tokens",
    ("overall", 1, 200): "Overall speedup, BS=1, 200 tokens",
    ("expert", 1, 200): "Expert speedup, BS=1, 200 tokens",
    ("switch", 1, 0): "Model switching time",
}


def test_table3_report(benchmark, table3):
    benchmark.pedantic(lambda: table3, rounds=1, iterations=1)
    rows = []
    for key, label in LABELS.items():
        paper_a, paper_h = PAPER[key]
        ours_a, ours_h = table3[key]
        rows.append((label, fmt_x(paper_a), fmt_x(ours_a),
                     fmt_x(paper_h), fmt_x(ours_h)))
    rows.append((" > 150 experts", "DGX OOM", "DGX OOM (reproduced)",
                 "DGX OOM", "DGX OOM (reproduced)"))
    print_table(
        "Table III: Samba-CoE, SN40L Node vs DGX",
        ["Metric", "Paper vs A100", "Ours vs A100",
         "Paper vs H100", "Ours vs H100"],
        rows,
    )


def test_switching_ratios_match_paper(table3):
    a100_x, h100_x = table3[("switch", 1, 0)]
    assert a100_x == pytest.approx(31.0, rel=0.1)
    assert h100_x == pytest.approx(15.0, rel=0.15)


def test_expert_speedups_in_paper_band(table3):
    for tokens in (20, 200):
        a100_x, h100_x = table3[("expert", 1, tokens)]
        assert 1.5 <= a100_x <= 3.5
        assert 1.2 <= h100_x <= 2.5


def test_overall_exceeds_expert_speedup(table3):
    """Switching dominates the DGXs, so overall > expert-only speedup."""
    for batch, tokens in ((1, 20), (8, 20)):
        overall_a, _ = table3[("overall", batch, tokens)]
        expert_a, _ = table3[("expert", 1, tokens)]
        assert overall_a > expert_a


def test_bs8_beats_bs1_at_20_tokens(table3):
    """More cold expert copies per batch favour the SN40L (paper: 6.6 > 4.8)."""
    assert table3[("overall", 8, 20)][0] >= table3[("overall", 1, 20)][0] * 0.95


def test_more_tokens_dilutes_the_switch_advantage(table3):
    """Paper: overall speedup drops from 6.6x (20 tok) to 4.2x (200 tok)."""
    assert table3[("overall", 8, 20)][0] > table3[("overall", 8, 200)][0]


def test_dgx_cannot_host_more_than_150(table3):
    from repro.systems.platforms import dgx_a100_platform
    from repro.units import GiB

    reserved = LLAMA2_7B.weight_bytes + 8 * GiB
    hosted = dgx_a100_platform().max_hosted_experts(LLAMA2_7B.weight_bytes, reserved)
    assert hosted <= 150
