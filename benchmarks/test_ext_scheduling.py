"""Extension: serving-schedule policies on the three-tier memory system.

Not a paper figure — an ablation of the serving-layer policies the SN40L
architecture enables (repro.coe.scheduling): FIFO vs bounded-window
expert-affinity batching, and speculative prefetch on workflow-chained
traffic.
"""

import random

import pytest

from benchmarks.conftest import print_table
from repro.coe.expert import build_samba_coe_library
from repro.coe.scheduling import (
    Request,
    affinity_schedule,
    fifo_schedule,
    serve_schedule,
    serve_with_prefetch,
)
from repro.coe.serving import ExpertServer
from repro.systems.platforms import sn40l_platform
from repro.units import GiB


def _server(library, cache_slots):
    platform = sn40l_platform()
    budget = cache_slots * library.experts[0].weight_bytes + 1 * GiB
    return ExpertServer(platform, library,
                     reserved_hbm_bytes=platform.hbm_capacity_bytes - budget)


def run_scheduling():
    library = build_samba_coe_library(80)
    sessions = [library.experts[i * 6] for i in range(12)]
    requests = [
        Request(turn * len(sessions) + user, expert)
        for turn in range(10)
        for user, expert in enumerate(sessions)
    ]
    outcomes = {}
    for name, schedule in (
        ("fifo", fifo_schedule(requests)),
        ("affinity-w24", affinity_schedule(requests, window=24)),
        ("affinity-w60", affinity_schedule(requests, window=60)),
    ):
        outcomes[name] = serve_schedule(
            _server(library, 8), schedule, name, output_tokens=10
        )

    rng = random.Random(7)
    chains = [
        [library.experts[0], library.experts[6], library.experts[7]],
        [library.experts[2], library.experts[9]],
    ]
    stream = []
    while len(stream) < 120:
        if rng.random() < 0.85:
            stream.extend(rng.choice(chains))
        else:
            stream.append(rng.choice(library.experts[:20]))
    prefetch = serve_with_prefetch(_server(library, 2), stream[:120],
                                   output_tokens=10)
    return outcomes, prefetch


@pytest.fixture(scope="module")
def results():
    return run_scheduling()


def test_scheduling_report(benchmark, results):
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    outcomes, prefetch = results
    print_table(
        "Extension: schedule policy (120 reqs, 12 sessions, 8-slot cache)",
        ["Policy", "Total", "Switches", "Hit rate"],
        [(name, f"{o.total_s:.2f} s", o.switches, f"{100 * o.hit_rate:.0f}%")
         for name, o in outcomes.items()],
    )
    print(f"Speculative prefetch: {100 * prefetch.predictor_accuracy:.0f}% "
          f"accuracy, {prefetch.hidden_switch_s * 1e3:.0f} ms hidden, "
          f"{prefetch.speedup:.3f}x")


def test_affinity_strictly_improves(results):
    outcomes, _ = results
    assert outcomes["affinity-w24"].switches < outcomes["fifo"].switches
    assert outcomes["affinity-w60"].switches < outcomes["affinity-w24"].switches
    assert outcomes["affinity-w60"].total_s < outcomes["fifo"].total_s


def test_prefetch_hides_switch_time(results):
    _, prefetch = results
    assert prefetch.hidden_switch_s > 0
    assert prefetch.speedup > 1.0
