"""Live wall-clock serving benchmark + sim/live decision cross-check.

The policy/clock split claims the asyncio backend is the same serving
stack on a different clock. This benchmark exercises the live engine
end to end — open-loop Poisson arrivals, bounded queues, streamed
tokens, graceful drain — and emits ``BENCH_live.json`` at the repo
root with the numbers an operator would watch:

1. **Open-loop run** — p50/p99 request latency (model seconds),
   goodput (completed tokens/s), shed rate, streamed-token count.
2. **Deadline run** — the same trace under an admission SLO, where the
   ETA-based shed path actually fires.
3. **Cross-check** — the recorded trace served on both clocks must
   produce byte-identical policy decisions (the PR's correctness
   artifact, asserted here so CI reruns it on every change).

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import json
import os
from pathlib import Path

import pytest

from benchmarks.conftest import fmt_ms, print_table
from repro.coe.api import ServeConfig
from repro.coe.crosscheck import cross_check
from repro.coe.expert import build_samba_coe_library
from repro.coe.live_engine import LiveEngine
from repro.load import ArrivalSpec, generate_trace
from repro.systems.platforms import sn40l_platform

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

NUM_EXPERTS = 12 if SMOKE else 24
NUM_NODES = 2 if SMOKE else 4
RATE_RPS = 30.0 if SMOKE else 60.0
DURATION_S = 2.0 if SMOKE else 6.0
#: Wall seconds per model second: compresses the trace for CI while
#: leaving real asyncio sleeps in the loop. Not lower — per-token
#: decode sleeps hit the event loop's ~1ms timer floor, and at harsher
#: compression that wall jitter dominates the reported model latencies.
TIME_SCALE = 0.1
ZIPF_ALPHA = 1.1
SEED = 1234
#: Admission SLO for the deadline run (model seconds), scaled so the
#: ETA path actually fires on the smoke trace's shallower backlogs.
DEADLINE_S = 0.3 if SMOKE else 1.0

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_live.json"


def _config(**overrides):
    base = dict(
        policy="affinity",
        cluster_policy="least_loaded",
        num_nodes=NUM_NODES,
        mode="live",
        time_scale=TIME_SCALE,
    )
    base.update(overrides)
    return ServeConfig(**base)


@pytest.fixture(scope="module")
def library():
    return build_samba_coe_library(NUM_EXPERTS)


@pytest.fixture(scope="module")
def requests(library):
    spec = ArrivalSpec(
        rate_rps=RATE_RPS, duration_s=DURATION_S, zipf_alpha=ZIPF_ALPHA,
        seed=SEED,
    )
    return generate_trace(spec, library).to_requests(library)


@pytest.fixture(scope="module")
def live_report(library, requests):
    tokens = []
    engine = LiveEngine(
        sn40l_platform, library, _config(), token_callback=tokens.append
    )
    report = engine.serve(requests)
    return report, len(tokens)


@pytest.fixture(scope="module")
def deadline_report(library, requests):
    engine = LiveEngine(
        sn40l_platform, library, _config(deadline_s=DEADLINE_S)
    )
    return engine.serve(requests)


@pytest.fixture(scope="module")
def check(library, requests):
    return cross_check(sn40l_platform, library, requests, _config())


def test_live_serving_report(benchmark, live_report, deadline_report):
    (report, _), slo = live_report, deadline_report
    benchmark.pedantic(lambda: report, rounds=1, iterations=1)
    rows = []
    for label, r in (("open", report), ("deadline", slo)):
        rows.append([
            label, r.requests, r.completed_requests, r.shed_requests,
            f"{r.shed_rate * 100:.1f}%",
            f"{r.goodput_tokens_per_second:.1f}",
            fmt_ms(r.p50_s), fmt_ms(r.p99_s),
            f"{r.wall_s:.2f}s",
        ])
    print_table(
        f"Live serving: {RATE_RPS:.0f} rps Poisson x {DURATION_S:.0f} model "
        f"s, Zipf-{ZIPF_ALPHA}, {NUM_NODES} nodes, time_scale={TIME_SCALE}",
        ["Run", "reqs", "done", "shed", "shed%", "good tok/s",
         "p50", "p99", "wall"],
        rows,
    )


def test_open_loop_run_completes_everything(live_report, requests):
    report, streamed = live_report
    assert report.drained
    assert report.completed_requests == len(requests)
    assert report.shed_requests == 0
    assert report.goodput_tokens_per_second > 0
    assert 0 < report.p50_s <= report.p99_s
    # Every completed output token was delivered through the callback.
    assert streamed == report.output_tokens == report.tokens_streamed


def test_deadline_run_sheds_typed_and_conserves(deadline_report, requests):
    report = deadline_report
    assert report.drained
    assert report.completed_requests + report.shed_requests == len(requests)
    assert report.shed_backpressure == 0  # default queue is deep enough
    # The SLO actually bites on this trace, but never starves it.
    assert 0 < report.shed_deadline < len(requests)


def test_sim_and_live_decisions_are_identical(check):
    assert check.match, check.mismatch
    assert check.decisions > 0
    assert "admission" in check.streams


def test_emit_bench_json(live_report, deadline_report, check):
    report, streamed = live_report
    payload = {
        "workload": {
            "experts": NUM_EXPERTS,
            "nodes": NUM_NODES,
            "rate_rps": RATE_RPS,
            "duration_s": DURATION_S,
            "zipf_alpha": ZIPF_ALPHA,
            "time_scale": TIME_SCALE,
            "deadline_s": DEADLINE_S,
            "seed": SEED,
            "smoke": SMOKE,
        },
        "open_loop": {**report.to_dict(), "tokens_via_callback": streamed},
        "deadline": deadline_report.to_dict(),
        "cross_check": check.to_dict(),
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    assert OUTPUT_PATH.exists()
