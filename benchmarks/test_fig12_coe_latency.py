"""Figure 12: Samba-CoE request latency vs expert count, three platforms.

The paper's sweep (BS=1 and BS=8, TP8 everywhere): while all experts fit
in HBM, latency is flat and set by expert execution. Past HBM capacity
(~45-50 7B experts on a DGX), experts spill — to host DRAM on the DGXs
(hundreds of ms per switch over PCIe) and to accelerator-local DDR on the
SN40L (~13 ms per switch), so the DGX curves spike while the SN40L stays
nearly flat. The DGXs run out of memory entirely at 150 experts.

Requests draw experts uniformly at random (batch samples are independent);
each point reports steady-state mean latency per request over a seeded
request stream served through the real LRU runtime.
"""

import random

import pytest

from benchmarks.conftest import fmt_ms, print_table
from repro.coe.expert import build_samba_coe_library
from repro.coe.serving import ExpertServer
from repro.systems.platforms import (
    dgx_a100_platform,
    dgx_h100_platform,
    sn40l_platform,
)

EXPERT_COUNTS = [10, 25, 50, 75, 100, 150, 300, 850]
OUTPUT_TOKENS = 20
REQUESTS = 160


def mean_latency(platform, library, batch, rng):
    """Steady-state mean per-request latency on one platform.

    The cache is warmed by touching every expert once (so the measured
    window reflects steady-state residency, not cold start), then REQUESTS
    uniform-random requests are served and averaged.
    """
    max_hosted = platform.max_hosted_experts(
        library.experts[0].weight_bytes,
        reserved_bytes=library.experts[0].weight_bytes,
    )
    if len(library) > max_hosted:
        return None  # OOM: this expert count does not fit on the node
    server = ExpertServer(platform, library)
    for expert in library.experts:
        server.runtime.activate(expert)
    totals = []
    pending = REQUESTS
    while pending > 0:
        size = min(batch, pending)
        experts = [library.experts[rng.randrange(len(library))] for _ in range(size)]
        result = server.serve_experts(experts, output_tokens=OUTPUT_TOKENS)
        totals.extend(r.total_s for r in result.requests)
        pending -= size
    return sum(totals) / len(totals)


def run_fig12(batch):
    platforms = [sn40l_platform(), dgx_h100_platform(), dgx_a100_platform()]
    series = {p.name: [] for p in platforms}
    for count in EXPERT_COUNTS:
        library = build_samba_coe_library(count)
        for platform in platforms:
            rng = random.Random(1234 + count)
            series[platform.name].append(
                mean_latency(platform, library, batch, rng)
            )
    return series


@pytest.fixture(scope="module")
def fig12_bs1():
    return run_fig12(batch=1)


@pytest.fixture(scope="module")
def fig12_bs8():
    return run_fig12(batch=8)


def _report(series, title):
    rows = []
    for idx, count in enumerate(EXPERT_COUNTS):
        row = [count]
        for name in series:
            value = series[name][idx]
            row.append(fmt_ms(value) if value is not None else "OOM")
        rows.append(row)
    print_table(title, ["Experts"] + list(series), rows)


def test_fig12_bs1_report(benchmark, fig12_bs1):
    benchmark.pedantic(lambda: fig12_bs1, rounds=1, iterations=1)
    _report(fig12_bs1, "Figure 12b: mean request latency, BS=1, 20 tokens")


def test_fig12_bs8_report(benchmark, fig12_bs8):
    benchmark.pedantic(lambda: fig12_bs8, rounds=1, iterations=1)
    _report(fig12_bs8, "Figure 12a: mean request latency, BS=8, 20 tokens")


def test_dgx_spikes_past_hbm_capacity(fig12_bs1):
    a100 = fig12_bs1["DGX-A100"]
    flat = a100[EXPERT_COUNTS.index(25)]
    spiked = a100[EXPERT_COUNTS.index(100)]
    assert spiked > 3 * flat  # the paper's latency cliff around 50 experts

    sn = fig12_bs1["SN40L-Node"]
    assert sn[EXPERT_COUNTS.index(100)] < 2 * sn[EXPERT_COUNTS.index(25)]


def test_dgx_oom_at_150_but_sn40l_scales_to_850(fig12_bs1):
    idx_300, idx_850 = EXPERT_COUNTS.index(300), EXPERT_COUNTS.index(850)
    assert fig12_bs1["DGX-A100"][idx_300] is None
    assert fig12_bs1["DGX-H100"][idx_300] is None
    assert fig12_bs1["SN40L-Node"][idx_850] is not None


def test_overall_speedup_over_50_experts(fig12_bs1, fig12_bs8):
    """Paper Table III: overall speedups at BS=1 are 4.8x / 2.8x and at
    BS=8 are 6.6x / 3.7x vs A100 / H100; BS=8 favours the SN40L more."""
    idx = EXPERT_COUNTS.index(100)
    bs1_a100 = fig12_bs1["DGX-A100"][idx] / fig12_bs1["SN40L-Node"][idx]
    bs8_a100 = fig12_bs8["DGX-A100"][idx] / fig12_bs8["SN40L-Node"][idx]
    assert bs1_a100 > 2.5
    assert bs8_a100 > bs1_a100  # more cold switches per batch
