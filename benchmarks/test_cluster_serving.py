"""Cluster scaling benchmark + partitioner microbenchmark.

The paper's Section III-B argues scale-out CoE serving carries a
load-balancing tax; this benchmark quantifies both the tax and its
mitigation. Emitted to ``BENCH_cluster.json`` at the repo root:

1. **Scaling curve** — tokens/s and load imbalance at 1/2/4/8 nodes
   under Zipf-1.1 traffic, for static ``least_loaded`` dispatch vs
   ``steal`` (work stealing + online hot-expert replication, with the
   DDR->HBM replica copy paid on the simulated clock).
2. **Partitioner microbenchmark** — wall-clock of the heapq bin packer
   sharding 10k experts.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import fmt_ms, print_table
from repro.bench.sweep import SweepPoint, run_sweep
from repro.coe.cluster_engine import run_cluster
from repro.coe.engine import zipf_request_stream
from repro.coe.expert import ExpertLibrary, ExpertProfile, build_samba_coe_library
from repro.systems.cluster import partition_experts
from repro.systems.platforms import sn40l_platform

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

NODE_COUNTS = (1, 2, 4, 8)
NUM_EXPERTS = 32 if SMOKE else 64
NUM_REQUESTS = 128 if SMOKE else 256
OUTPUT_TOKENS = 20
ZIPF_ALPHA = 1.1
SEED = 1234

PACK_EXPERTS = 2_000 if SMOKE else 10_000

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"


def _scaling_point(point: SweepPoint):
    """One (policy, node-count) grid point; module-level so the sweep
    runner's fork pool can pickle it. The workload stream is rebuilt
    from the fixed ``SEED`` in each worker — identical at every point,
    so the sweep measures policy and scale, nothing else."""
    library = build_samba_coe_library(NUM_EXPERTS)
    requests = zipf_request_stream(
        library, NUM_REQUESTS, alpha=ZIPF_ALPHA, seed=SEED,
        output_tokens=OUTPUT_TOKENS,
    )
    return run_cluster(
        sn40l_platform, library, requests, num_nodes=point["nodes"],
        policy=point["policy"],
        online_replication=point["policy"] == "steal",
    )


@pytest.fixture(scope="module")
def scaling_reports():
    axes = {"policy": ("least_loaded", "steal"), "nodes": NODE_COUNTS}
    points = [
        {"policy": p, "nodes": n}
        for p in axes["policy"] for n in axes["nodes"]
    ]
    reports = run_sweep(_scaling_point, axes, base_seed=SEED)
    results = {}
    for params, report in zip(points, reports):
        results.setdefault(params["policy"], {})[params["nodes"]] = report
    return results


@pytest.fixture(scope="module")
def partition_microbench():
    """Shard ``PACK_EXPERTS`` experts across 8 nodes with the heap packer."""
    library = ExpertLibrary(experts=[
        ExpertProfile(name=f"e{i:05d}", domain="chat")
        for i in range(PACK_EXPERTS)
    ])
    start = time.perf_counter()
    shards = partition_experts(library, 8, balanced=True)
    wall_s = time.perf_counter() - start
    loads = [sum(e.weight_bytes for e in shard) for shard in shards]
    return {
        "experts": PACK_EXPERTS,
        "nodes": 8,
        "wall_s": wall_s,
        "max_over_mean_load": max(loads) / (sum(loads) / len(loads)),
    }


def test_scaling_report(benchmark, scaling_reports):
    benchmark.pedantic(lambda: scaling_reports, rounds=1, iterations=1)
    rows = []
    for policy, by_nodes in scaling_reports.items():
        base = by_nodes[1].tokens_per_second
        for n, report in by_nodes.items():
            rows.append([
                policy, n,
                f"{report.tokens_per_second:.1f}",
                f"{report.tokens_per_second / base:.2f}x",
                f"{report.load_imbalance:.2f}",
                report.steals, report.replications,
                fmt_ms(report.makespan_s),
            ])
    print_table(
        f"Cluster scaling: {NUM_REQUESTS} Zipf-{ZIPF_ALPHA} requests, "
        f"{NUM_EXPERTS} experts",
        ["Policy", "Nodes", "tok/s", "scaling", "imbal", "steals",
         "repl", "makespan"],
        rows,
    )


def test_eight_nodes_scale_at_least_4x(scaling_reports):
    """Acceptance: with stealing + online replication, 8 nodes must hold
    at least half of perfect-linear scaling under Zipf-1.1 skew."""
    steal = scaling_reports["steal"]
    assert steal[8].tokens_per_second >= 4.0 * steal[1].tokens_per_second


def test_stealing_beats_static_dispatch_on_imbalance(scaling_reports):
    """Work stealing + replication must flatten the 8-node load skew that
    static least-loaded owner dispatch is stuck with."""
    static = scaling_reports["least_loaded"][8]
    stealing = scaling_reports["steal"][8]
    assert stealing.load_imbalance < static.load_imbalance
    assert stealing.tokens_per_second >= static.tokens_per_second
    assert stealing.steals > 0 and stealing.replications > 0


def test_throughput_monotonic_in_nodes(scaling_reports):
    for policy, by_nodes in scaling_reports.items():
        rates = [by_nodes[n].tokens_per_second for n in NODE_COUNTS]
        assert rates == sorted(rates), policy


def test_partition_10k_experts_is_fast(partition_microbench):
    """The heapq packer must shard 10k experts well under a second (the
    old ``loads.index(min(loads))`` scan was quadratic in node count x
    experts and showed up in cluster construction)."""
    assert partition_microbench["wall_s"] < 1.0
    assert partition_microbench["max_over_mean_load"] < 1.01


def test_emit_bench_json(scaling_reports, partition_microbench):
    payload = {
        "workload": {
            "experts": NUM_EXPERTS,
            "requests": NUM_REQUESTS,
            "output_tokens": OUTPUT_TOKENS,
            "zipf_alpha": ZIPF_ALPHA,
            "seed": SEED,
            "node_counts": list(NODE_COUNTS),
            "smoke": SMOKE,
        },
        "scaling": {
            policy: {
                str(n): {
                    **{k: v for k, v in report.to_dict().items()
                       if k != "nodes"},
                    "scaling_vs_one_node": (
                        report.tokens_per_second
                        / by_nodes[1].tokens_per_second
                    ),
                }
                for n, report in by_nodes.items()
            }
            for policy, by_nodes in scaling_reports.items()
        },
        "partition_microbenchmark": partition_microbench,
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    assert OUTPUT_PATH.exists()
